#include "trace/store.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "mem/block.hh"
#include "util/hash.hh"
#include "util/simd.hh"

// The reader hands engines pointers straight into the file mapping,
// so the in-memory and on-disk column layouts must coincide.  Every
// supported target is little-endian; refuse to build elsewhere rather
// than silently byte-swap the hot path.
static_assert(std::endian::native == std::endian::little,
              "stored-trace columns are little-endian on disk and "
              "mapped zero-copy");

namespace dirsim::trace
{

namespace
{

constexpr char kMagic[8] = {'D', 'S', 'P', 'T', 'R', 'A', 'C', 'E'};

/** Fixed header bytes before the name (see store.hh layout). */
constexpr std::uint64_t kFixedHeaderBytes = 88;
/** Header digest covers [kDigestFrom, 88 + nameLen): everything
 *  after magic + version, so a version bump reports as a version
 *  mismatch instead of generic corruption. */
constexpr std::uint64_t kDigestFrom = 12;
/** Sanity cap on the embedded workload name. */
constexpr std::uint64_t kMaxNameLen = 4096;

constexpr std::uint64_t
align8(std::uint64_t v)
{
    return (v + 7) & ~std::uint64_t{7};
}

constexpr std::uint64_t
align64(std::uint64_t v)
{
    return (v + 63) & ~std::uint64_t{63};
}

/** Bytes of one chunk's payload (block + unit + typeFlags columns). */
constexpr std::uint64_t
payloadBytes(std::uint64_t nRefs)
{
    return 6 * nRefs;
}

void
putLE16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putLE32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putLE64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
getLE32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getLE64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

[[noreturn]] void
fail(const std::string &path, const std::string &what)
{
    throw std::runtime_error("StoredTrace: " + path + ": " + what);
}

[[noreturn]] void
failErrno(const std::string &path, const std::string &what)
{
    fail(path, what + ": " + std::strerror(errno));
}

/** pread exactly @p n bytes at @p offset or throw. */
void
preadFull(int fd, void *buf, std::size_t n, std::uint64_t offset,
          const std::string &path)
{
    auto *p = static_cast<unsigned char *>(buf);
    while (n != 0) {
        const ssize_t got = ::pread(fd, p, n, off_t(offset));
        if (got < 0) {
            if (errno == EINTR)
                continue;
            failErrno(path, "pread failed");
        }
        if (got == 0)
            fail(path, "unexpected end of file (truncated store)");
        p += got;
        offset += std::uint64_t(got);
        n -= std::size_t(got);
    }
}

/** Digest of one chunk's payload as laid out on disk. */
std::uint64_t
chunkDigest(const std::uint8_t *payload, std::uint64_t nRefs)
{
    return util::StreamHash64::of(payload, payloadBytes(nRefs));
}

/**
 * One movable read window into the store file: either a remapped
 * mmap region or a heap staging buffer filled by pread.  Exactly one
 * window's worth of chunk data is resident per cursor at any time —
 * this is the O(chunk) RSS bound.
 */
class FileWindow
{
  public:
    FileWindow(int fd, bool useMmap, const std::string &path)
        : _fd(fd), _mmap(useMmap), _path(&path)
    {
    }

    ~FileWindow() { drop(); }

    FileWindow(const FileWindow &) = delete;
    FileWindow &operator=(const FileWindow &) = delete;

    /** Make [offset, offset+len) of the file addressable and return
     *  a pointer to its first byte (8-aligned for aligned offsets). */
    const std::uint8_t *
    view(std::uint64_t offset, std::uint64_t len)
    {
        if (len == 0)
            return nullptr;
        if (_mmap) {
            drop();
            const std::uint64_t page =
                std::uint64_t(::sysconf(_SC_PAGESIZE));
            const std::uint64_t base = offset & ~(page - 1);
            _mapLen = std::size_t(len + (offset - base));
            void *m = ::mmap(nullptr, _mapLen, PROT_READ, MAP_PRIVATE,
                             _fd, off_t(base));
            if (m == MAP_FAILED) {
                _mapLen = 0;
                failErrno(*_path, "mmap window failed");
            }
            _map = m;
            ::madvise(_map, _mapLen, MADV_SEQUENTIAL);
            return static_cast<const std::uint8_t *>(_map) +
                   (offset - base);
        }
        _buf.resize(std::size_t(len));
        preadFull(_fd, _buf.data(), _buf.size(), offset, *_path);
        return _buf.data();
    }

    /** Hint the kernel to start reading the next window (pread
     *  mode's answer to readahead: the copy into the page cache
     *  overlaps with replay of the current chunk). */
    void
    prefetch(std::uint64_t offset, std::uint64_t len) const
    {
        if (!_mmap && len != 0)
            ::posix_fadvise(_fd, off_t(offset), off_t(len),
                            POSIX_FADV_WILLNEED);
    }

    /** Release the current window (mmap mode). */
    void
    drop()
    {
        if (_map != nullptr) {
            ::munmap(_map, _mapLen);
            _map = nullptr;
            _mapLen = 0;
        }
    }

  private:
    int _fd;
    bool _mmap;
    const std::string *_path;
    void *_map = nullptr;
    std::size_t _mapLen = 0;
    util::AlignedVector<std::uint8_t> _buf; //!< 64-aligned base.
};

/** View chunk @p c and (optionally) verify its digest. */
const std::uint8_t *
viewChunk(FileWindow &win, const StoredTrace &trace, std::uint64_t offset,
          std::uint64_t nRefs, std::uint64_t digest, bool verify,
          const std::string &path)
{
    const std::uint8_t *p = win.view(offset, payloadBytes(nRefs));
    // Alignment contract: a 64-aligned chunk offset must surface as a
    // cache-line-aligned pointer (mmap bases are page-aligned, the
    // pread buffer is 64-aligned), so SIMD loads never split lines.
    // Legacy 8-aligned chunks are exempt — they predate the contract.
    assert(offset % util::kCacheLineBytes != 0 ||
           reinterpret_cast<std::uintptr_t>(p) %
                   util::kCacheLineBytes ==
               0);
    if (verify && chunkDigest(p, nRefs) != digest)
        fail(path, "chunk digest mismatch at offset " +
                       std::to_string(offset) +
                       " (corrupted store) in trace '" + trace.name() +
                       "'");
    return p;
}

} // namespace

// ---------------------------------------------------------------------
// PreparedTraceWriter
// ---------------------------------------------------------------------

PreparedTraceWriter::PreparedTraceWriter(const std::string &path,
                                         const std::string &name,
                                         const PrepareOptions &opts,
                                         const StoreWriteOptions &store)
    : _path(path), _name(name), _opts(opts), _chunkRefs(store.chunkRefs),
      _configFingerprint(store.configFingerprint)
{
    if (_chunkRefs == 0)
        throw std::invalid_argument(
            "PreparedTraceWriter: chunkRefs must be >= 1");
    if (_name.size() > kMaxNameLen)
        throw std::invalid_argument(
            "PreparedTraceWriter: trace name longer than " +
            std::to_string(kMaxNameLen) + " bytes");
    _fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                 0644);
    if (_fd < 0)
        failErrno(path, "cannot create store file");
    // Reserve the header region (patched by finish()); zeros here
    // guarantee a crashed half-write never carries a valid magic.
    const std::vector<std::uint8_t> zeros(
        std::size_t(align8(kFixedHeaderBytes + _name.size() + 8)), 0);
    writeBytes(zeros.data(), zeros.size());
    _data.block.reserve(std::size_t(_chunkRefs));
    _data.unit.reserve(std::size_t(_chunkRefs));
    _data.typeFlags.reserve(std::size_t(_chunkRefs));
}

PreparedTraceWriter::~PreparedTraceWriter()
{
    if (_fd >= 0) {
        // finish() was never reached: abandon the partial file.
        ::close(_fd);
        ::unlink(_path.c_str());
    }
}

void
PreparedTraceWriter::appendCpu(unsigned cpu, std::uint32_t block,
                               std::uint8_t unit, std::uint8_t typeFlags)
{
    if (!_opts.timedStreams)
        throw std::logic_error(
            "PreparedTraceWriter: appendCpu() on an untimed store");
    if (cpu >= 256)
        throw std::invalid_argument(
            "PreparedTraceWriter: dense CPU index " +
            std::to_string(cpu) + " exceeds the 8-bit unit column");
    if (cpu >= _cpuBuffers.size()) {
        _cpuBuffers.resize(cpu + 1);
        _cpuRefs.resize(cpu + 1, 0);
        _cpuEntries.resize(cpu + 1);
    }
    ChunkBuffer &buf = _cpuBuffers[cpu];
    buf.block.push_back(block);
    buf.unit.push_back(unit);
    buf.typeFlags.push_back(typeFlags);
    ++_cpuRefs[cpu];
    if (buf.block.size() >= _chunkRefs)
        flushChunk(buf, _cpuEntries[cpu]);
}

void
PreparedTraceWriter::setUnits(unsigned nUnits, unsigned nCpus)
{
    if (nUnits > 256 || nCpus > 256)
        throw std::invalid_argument(
            "PreparedTraceWriter: unit/CPU count exceeds the 8-bit "
            "column (" + std::to_string(nUnits) + "/" +
            std::to_string(nCpus) + ")");
    _nUnits = nUnits;
    _nCpus = nCpus;
}

void
PreparedTraceWriter::flushChunk(ChunkBuffer &buf,
                                std::vector<ChunkEntry> &entries)
{
    if (buf.block.empty())
        return;
    // Start every chunk on a cache-line boundary: mmap windows then
    // hand SIMD replay 64-aligned column pointers for free.
    padTo64();
    const std::uint64_t n = buf.block.size();
    ChunkEntry entry;
    entry.offset = _pos;
    entry.nRefs = n;
    util::StreamHash64 hash;
    hash.update(buf.block.data(), std::size_t(4 * n));
    hash.update(buf.unit.data(), std::size_t(n));
    hash.update(buf.typeFlags.data(), std::size_t(n));
    entry.digest = hash.value();
    writeBytes(buf.block.data(), std::size_t(4 * n));
    writeBytes(buf.unit.data(), std::size_t(n));
    writeBytes(buf.typeFlags.data(), std::size_t(n));
    padTo8();
    entries.push_back(entry);
    buf.block.clear();
    buf.unit.clear();
    buf.typeFlags.clear();
}

void
PreparedTraceWriter::writeBytes(const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    while (n != 0) {
        const ssize_t put = ::write(_fd, p, n);
        if (put < 0) {
            if (errno == EINTR)
                continue;
            failErrno(_path, "write failed");
        }
        p += put;
        n -= std::size_t(put);
        _pos += std::uint64_t(put);
    }
}

void
PreparedTraceWriter::padTo8()
{
    static const std::uint8_t zeros[8] = {};
    const std::uint64_t pad = align8(_pos) - _pos;
    if (pad != 0)
        writeBytes(zeros, std::size_t(pad));
}

void
PreparedTraceWriter::padTo64()
{
    static const std::uint8_t zeros[64] = {};
    const std::uint64_t pad = align64(_pos) - _pos;
    if (pad != 0)
        writeBytes(zeros, std::size_t(pad));
}

void
PreparedTraceWriter::finish()
{
    if (_finished)
        throw std::logic_error(
            "PreparedTraceWriter: finish() called twice");
    if (_opts.timedStreams && _cpuBuffers.size() > _nCpus)
        throw std::logic_error(
            "PreparedTraceWriter: appendCpu() saw CPU " +
            std::to_string(_cpuBuffers.size() - 1) +
            " but setUnits() declared only " + std::to_string(_nCpus));

    flushChunk(_data, _dataEntries);
    for (std::size_t c = 0; c < _cpuBuffers.size(); ++c)
        flushChunk(_cpuBuffers[c], _cpuEntries[c]);

    const std::uint64_t tableOffset = _pos;
    std::vector<std::uint8_t> table;
    for (const ChunkEntry &e : _dataEntries) {
        putLE64(table, e.offset);
        putLE64(table, e.nRefs);
        putLE64(table, e.digest);
    }
    if (_opts.timedStreams) {
        _cpuRefs.resize(_nCpus, 0);
        _cpuEntries.resize(_nCpus);
        for (unsigned c = 0; c < _nCpus; ++c)
            putLE64(table, _cpuRefs[c]);
        for (unsigned c = 0; c < _nCpus; ++c) {
            for (const ChunkEntry &e : _cpuEntries[c]) {
                putLE64(table, e.offset);
                putLE64(table, e.nRefs);
                putLE64(table, e.digest);
            }
        }
    }
    putLE64(table, util::StreamHash64::of(table.data(), table.size()));
    writeBytes(table.data(), table.size());

    // Assemble and patch the header now that every count is known.
    std::vector<std::uint8_t> header;
    header.insert(header.end(), kMagic, kMagic + 8);
    putLE32(header, kStoreFormatVersion);
    putLE32(header, std::uint32_t(kFixedHeaderBytes + _name.size() + 8));
    putLE64(header, _configFingerprint);
    putLE32(header, _opts.blockBytes);
    putLE32(header, std::uint32_t(_opts.domain));
    header.push_back(_opts.dropLockTests ? 1 : 0);
    header.push_back(_opts.timedStreams ? 1 : 0);
    putLE16(header, 0);
    putLE32(header, _nUnits);
    putLE32(header, _nCpus);
    putLE32(header, std::uint32_t(_name.size()));
    putLE64(header, _instrRefs);
    putLE64(header, _dataRefs);
    putLE64(header, _chunkRefs);
    putLE64(header, std::uint64_t(_dataEntries.size()));
    putLE64(header, tableOffset);
    header.insert(header.end(), _name.begin(), _name.end());
    putLE64(header,
            util::StreamHash64::of(header.data() + kDigestFrom,
                                   header.size() - kDigestFrom));

    std::size_t done = 0;
    while (done < header.size()) {
        const ssize_t put = ::pwrite(_fd, header.data() + done,
                                     header.size() - done, off_t(done));
        if (put < 0) {
            if (errno == EINTR)
                continue;
            failErrno(_path, "header pwrite failed");
        }
        done += std::size_t(put);
    }

    // Durability before any rename the caller does: a completed
    // finish() means the bytes are on their way to stable storage.
    if (::fsync(_fd) != 0)
        failErrno(_path, "fsync failed");
    ::close(_fd);
    _fd = -1;
    _finished = true;
}

// ---------------------------------------------------------------------
// StoredTrace reader
// ---------------------------------------------------------------------

std::shared_ptr<const StoredTrace>
StoredTrace::open(const std::string &path, const StoredTraceOptions &opts)
{
    // shared_ptr from the start: cursor factories use shared_from_this.
    std::shared_ptr<StoredTrace> t(new StoredTrace);
    t->_path = path;
    t->_readOpts = opts;
    t->_fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (t->_fd < 0)
        failErrno(path, "cannot open store file");

    struct stat st{};
    if (::fstat(t->_fd, &st) != 0)
        failErrno(path, "fstat failed");
    const std::uint64_t fileBytes = std::uint64_t(st.st_size);
    t->_fileBytes = fileBytes;
    if (fileBytes < kFixedHeaderBytes + 8 + 8)
        fail(path, "file too small to be a stored trace");

    // --- Header ------------------------------------------------------
    std::uint8_t fixed[kFixedHeaderBytes];
    preadFull(t->_fd, fixed, sizeof(fixed), 0, path);
    if (std::memcmp(fixed, kMagic, 8) != 0)
        fail(path, "bad magic (not a stored trace)");
    const std::uint32_t version = getLE32(fixed + 8);
    if (version != kStoreFormatVersion)
        fail(path, "unsupported stored-trace format version " +
                       std::to_string(version) + " (this build reads " +
                       std::to_string(kStoreFormatVersion) + ")");
    const std::uint32_t headerBytes = getLE32(fixed + 12);
    const std::uint32_t nameLen = getLE32(fixed + 44);
    if (nameLen > kMaxNameLen)
        fail(path, "unreasonable name length " + std::to_string(nameLen));
    if (headerBytes != kFixedHeaderBytes + nameLen + 8 ||
        align8(headerBytes) > fileBytes)
        fail(path, "inconsistent header size");

    std::vector<std::uint8_t> tail(nameLen + 8);
    preadFull(t->_fd, tail.data(), tail.size(), kFixedHeaderBytes, path);
    util::StreamHash64 hh;
    hh.update(fixed + kDigestFrom, sizeof(fixed) - kDigestFrom);
    hh.update(tail.data(), nameLen);
    if (hh.value() != getLE64(tail.data() + nameLen))
        fail(path, "header digest mismatch (corrupted store)");

    t->_configFingerprint = getLE64(fixed + 16);
    t->_opts.blockBytes = getLE32(fixed + 24);
    const std::uint32_t domain = getLE32(fixed + 28);
    if (domain > std::uint32_t(sim::SharingDomain::Processor))
        fail(path, "invalid sharing domain " + std::to_string(domain));
    t->_opts.domain = sim::SharingDomain(domain);
    t->_opts.dropLockTests = fixed[32] != 0;
    t->_opts.timedStreams = fixed[33] != 0;
    t->_nUnits = getLE32(fixed + 36);
    t->_nCpus = getLE32(fixed + 40);
    t->_name.assign(reinterpret_cast<const char *>(tail.data()),
                    nameLen);
    t->_instrRefs = getLE64(fixed + 48);
    t->_dataRefs = getLE64(fixed + 56);
    t->_chunkRefs = getLE64(fixed + 64);
    const std::uint64_t nChunks = getLE64(fixed + 72);
    const std::uint64_t tableOffset = getLE64(fixed + 80);
    if (t->_chunkRefs == 0)
        fail(path, "chunkRefs is zero");
    if (t->_nUnits > 256 || t->_nCpus > 256)
        fail(path, "unit/CPU count exceeds the 8-bit column");

    // --- Chunk table -------------------------------------------------
    if (tableOffset % 8 != 0 || tableOffset < align8(headerBytes) ||
        tableOffset + 8 > fileBytes)
        fail(path, "chunk table offset out of bounds");
    const std::uint64_t tableLen = fileBytes - tableOffset;
    std::vector<std::uint8_t> table(static_cast<std::size_t>(tableLen));
    preadFull(t->_fd, table.data(), table.size(), tableOffset, path);
    if (util::StreamHash64::of(table.data(), table.size() - 8) !=
        getLE64(table.data() + table.size() - 8))
        fail(path, "chunk table digest mismatch (corrupted or "
                   "truncated store)");

    const std::uint8_t *cur = table.data();
    const std::uint8_t *end = table.data() + table.size() - 8;
    auto need = [&](std::uint64_t bytes) {
        if (std::uint64_t(end - cur) < bytes)
            fail(path, "chunk table shorter than its header claims");
    };
    auto parseEntry = [&](std::uint64_t maxRefs) {
        need(24);
        ChunkRef c;
        c.offset = getLE64(cur);
        c.nRefs = getLE64(cur + 8);
        c.digest = getLE64(cur + 16);
        cur += 24;
        if (c.nRefs == 0 || c.nRefs > maxRefs)
            fail(path, "chunk reference count out of range");
        if (c.offset % 8 != 0 || c.offset < align8(headerBytes) ||
            c.offset + payloadBytes(c.nRefs) > tableOffset)
            fail(path, "chunk payload out of bounds");
        return c;
    };

    t->_dataChunks.reserve(std::size_t(nChunks));
    std::uint64_t dataSum = 0;
    for (std::uint64_t i = 0; i < nChunks; ++i) {
        t->_dataChunks.push_back(parseEntry(t->_chunkRefs));
        dataSum += t->_dataChunks.back().nRefs;
    }
    if (dataSum != t->_dataRefs)
        fail(path, "data chunk counts do not sum to the header's "
                   "reference count");

    if (t->_opts.timedStreams) {
        need(8 * std::uint64_t(t->_nCpus));
        t->_cpuRefCounts.resize(t->_nCpus);
        for (unsigned c = 0; c < t->_nCpus; ++c) {
            t->_cpuRefCounts[c] = getLE64(cur);
            cur += 8;
        }
        std::uint64_t cpuSum = 0;
        t->_cpuChunks.resize(t->_nCpus);
        for (unsigned c = 0; c < t->_nCpus; ++c) {
            const std::uint64_t refs = t->_cpuRefCounts[c];
            cpuSum += refs;
            const std::uint64_t chunks =
                (refs + t->_chunkRefs - 1) / t->_chunkRefs;
            std::uint64_t sum = 0;
            t->_cpuChunks[c].reserve(std::size_t(chunks));
            for (std::uint64_t i = 0; i < chunks; ++i) {
                t->_cpuChunks[c].push_back(parseEntry(t->_chunkRefs));
                sum += t->_cpuChunks[c].back().nRefs;
            }
            if (sum != refs)
                fail(path, "CPU stream chunk counts do not sum to the "
                           "table's per-CPU reference count");
        }
        // Every kept reference (instr + data) lands in exactly one
        // CPU stream, so the totals must agree.
        if (cpuSum != t->_instrRefs + t->_dataRefs)
            fail(path, "per-CPU stream totals disagree with the "
                       "header's reference counts");
    }
    if (cur != end)
        fail(path, "trailing bytes after the chunk table");

    // --- Probe the read mode -----------------------------------------
    if (opts.mode != StoreReadMode::Pread && fileBytes != 0) {
        const std::size_t probeLen = 4096;
        void *m = ::mmap(nullptr, probeLen, PROT_READ, MAP_PRIVATE,
                         t->_fd, 0);
        if (m != MAP_FAILED) {
            ::munmap(m, probeLen);
            t->_mmapOk = true;
        } else if (opts.mode == StoreReadMode::Mmap) {
            failErrno(path, "mmap unsupported on this file");
        }
    }

    return t;
}

StoredTrace::~StoredTrace()
{
    if (_fd >= 0)
        ::close(_fd);
}

// Cursor classes live at namespace scope (not anonymous) so
// StoredTrace's friend declarations name them; they are still
// private to this translation unit in practice — only the factory
// functions below construct them.

/** PreparedSpanSource over a StoredTrace's data chunks. */
class StoredSpanCursor final : public PreparedSpanSource
{
  public:
    explicit StoredSpanCursor(std::shared_ptr<const StoredTrace> trace)
        : _trace(std::move(trace)),
          _window(_trace->_fd, _trace->_mmapOk, _trace->path())
    {
    }

    const std::string &name() const override { return _trace->name(); }
    const PrepareOptions &options() const override
    {
        return _trace->options();
    }
    std::uint64_t instrRefs() const override
    {
        return _trace->instrRefs();
    }
    std::uint64_t dataRefs() const override
    {
        return _trace->dataRefs();
    }
    unsigned numUnits() const override { return _trace->numUnits(); }
    unsigned numCpus() const override { return _trace->numCpus(); }

    bool
    nextSpan(PreparedSpan &span) override
    {
        const auto &chunks = _trace->_dataChunks;
        if (chunks.empty()) {
            // An empty stream yields exactly one empty span.
            if (_doneEmpty)
                return false;
            _doneEmpty = true;
            span = PreparedSpan{};
            return true;
        }
        if (_next >= chunks.size())
            return false;
        const StoredTrace::ChunkRef &c = chunks[_next];
        const std::uint8_t *p = viewChunk(
            _window, *_trace, c.offset, c.nRefs, c.digest,
            _trace->_readOpts.verifyDigests, _trace->path());
        span.block = reinterpret_cast<const std::uint32_t *>(p);
        span.unit = p + 4 * c.nRefs;
        span.typeFlags = p + 5 * c.nRefs;
        span.n = std::size_t(c.nRefs);
        ++_next;
        if (_next < chunks.size())
            _window.prefetch(chunks[_next].offset,
                             payloadBytes(chunks[_next].nRefs));
        return true;
    }

    void
    rewind() override
    {
        _next = 0;
        _doneEmpty = false;
        _window.drop();
    }

  private:
    std::shared_ptr<const StoredTrace> _trace;
    FileWindow _window;
    std::size_t _next = 0;
    bool _doneEmpty = false;
};

/** CpuRefCursor over one CPU's stream chunks in a StoredTrace. */
class StoredCpuCursor final : public CpuRefCursor
{
  public:
    StoredCpuCursor(std::shared_ptr<const StoredTrace> trace,
                    unsigned cpu)
        : _trace(std::move(trace)),
          _window(_trace->_fd, _trace->_mmapOk, _trace->path()),
          _chunks(&_trace->_cpuChunks.at(cpu))
    {
    }

    bool
    atEnd() override
    {
        while (_i >= _n) {
            if (_nextChunk >= _chunks->size())
                return true;
            const StoredTrace::ChunkRef &c = (*_chunks)[_nextChunk];
            const std::uint8_t *p = viewChunk(
                _window, *_trace, c.offset, c.nRefs, c.digest,
                _trace->_readOpts.verifyDigests, _trace->path());
            _block = reinterpret_cast<const std::uint32_t *>(p);
            _unit = p + 4 * c.nRefs;
            _typeFlags = p + 5 * c.nRefs;
            _n = std::size_t(c.nRefs);
            _i = 0;
            ++_nextChunk;
            if (_nextChunk < _chunks->size())
                _window.prefetch(
                    (*_chunks)[_nextChunk].offset,
                    payloadBytes((*_chunks)[_nextChunk].nRefs));
        }
        return false;
    }

    void
    take(std::uint32_t &block, std::uint8_t &unit,
         std::uint8_t &typeFlags) override
    {
        block = _block[_i];
        unit = _unit[_i];
        typeFlags = _typeFlags[_i];
        ++_i;
    }

  private:
    std::shared_ptr<const StoredTrace> _trace;
    FileWindow _window;
    const std::vector<StoredTrace::ChunkRef> *_chunks;
    std::size_t _nextChunk = 0;
    const std::uint32_t *_block = nullptr;
    const std::uint8_t *_unit = nullptr;
    const std::uint8_t *_typeFlags = nullptr;
    std::size_t _n = 0;
    std::size_t _i = 0;
};

std::unique_ptr<PreparedSpanSource>
StoredTrace::spanCursor() const
{
    return std::make_unique<StoredSpanCursor>(shared_from_this());
}

std::unique_ptr<CpuRefCursor>
StoredTrace::cpuCursor(unsigned cpu) const
{
    if (!_opts.timedStreams)
        throw std::logic_error(
            "StoredTrace: cpuCursor() on an untimed store '" + _name +
            "'");
    return std::make_unique<StoredCpuCursor>(shared_from_this(), cpu);
}

PreparedTrace
StoredTrace::loadAll() const
{
    PreparedTrace out;
    out._name = _name;
    out._opts = _opts;
    out._instrRefs = _instrRefs;
    out._nUnits = _nUnits;
    out._nCpus = _nCpus;
    out._block.reserve(std::size_t(_dataRefs));
    out._unit.reserve(std::size_t(_dataRefs));
    out._typeFlags.reserve(std::size_t(_dataRefs));

    FileWindow win(_fd, _mmapOk, _path);
    auto appendColumns = [&](const ChunkRef &c,
                             util::AlignedVector<std::uint32_t> &block,
                             util::AlignedVector<std::uint8_t> &unit,
                             util::AlignedVector<std::uint8_t> &typeFlags) {
        const std::uint8_t *p =
            viewChunk(win, *this, c.offset, c.nRefs, c.digest,
                      _readOpts.verifyDigests, _path);
        const auto *b = reinterpret_cast<const std::uint32_t *>(p);
        block.insert(block.end(), b, b + c.nRefs);
        unit.insert(unit.end(), p + 4 * c.nRefs, p + 5 * c.nRefs);
        typeFlags.insert(typeFlags.end(), p + 5 * c.nRefs,
                         p + 6 * c.nRefs);
    };

    for (const ChunkRef &c : _dataChunks)
        appendColumns(c, out._block, out._unit, out._typeFlags);
    if (_opts.timedStreams) {
        out._cpuStreams.resize(_nCpus);
        for (unsigned c = 0; c < _nCpus; ++c) {
            PreparedCpuStream &s = out._cpuStreams[c];
            s.block.reserve(std::size_t(_cpuRefCounts[c]));
            s.unit.reserve(std::size_t(_cpuRefCounts[c]));
            s.typeFlags.reserve(std::size_t(_cpuRefCounts[c]));
            for (const ChunkRef &chunk : _cpuChunks[c])
                appendColumns(chunk, s.block, s.unit, s.typeFlags);
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// Spill pipelines
// ---------------------------------------------------------------------

namespace
{

std::uint64_t
fileSizeOf(const std::string &path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0 ? std::uint64_t(st.st_size)
                                          : 0;
}

/** First-seen dense numbering (same discipline as sim::UnitMapper and
 *  PreparedTraceBuilder's planning scan). */
unsigned
mapDense(std::vector<std::int32_t> &table, unsigned key, unsigned &seen)
{
    if (key >= table.size())
        table.resize(key + 1, -1);
    std::int32_t &slot = table[key];
    if (slot < 0)
        slot = static_cast<std::int32_t>(seen++);
    return static_cast<unsigned>(slot);
}

} // namespace

StoredTraceInfo
spillFromSource(RefSource &source, const std::string &name,
                const PrepareOptions &opts, const std::string &path,
                const StoreWriteOptions &store)
{
    // One serial pass in record order: the identical filter, numbering
    // and block mapping as PreparedTraceBuilder's planning scan, so
    // the spilled columns are bit-identical to an in-memory prepare of
    // the same stream.
    std::vector<std::int32_t> unitOf;
    std::vector<std::int32_t> cpuOf;
    unsigned unitsSeen = 0;
    unsigned cpusSeen = 0;
    const mem::BlockMapper toBlock(opts.blockBytes);
    constexpr std::uint64_t maxBlockIndex = 0xffffffffULL;

    PreparedTraceWriter writer(path, name, opts, store);
    TraceRecord rec;
    while (source.next(rec)) {
        if (opts.dropLockTests && rec.isLockTest())
            continue;
        const unsigned unit =
            mapDense(unitOf, sim::unitKey(rec, opts.domain), unitsSeen);
        const unsigned cpu = mapDense(cpuOf, rec.cpu, cpusSeen);
        if (unitsSeen > 256 || cpusSeen > 256)
            throw std::invalid_argument(
                "spillFromSource: trace '" + name +
                "' uses more than 256 sharing units or CPUs; the "
                "prepared 8-bit unit column cannot hold it");
        const std::uint64_t blockIdx = toBlock(rec.addr);
        if (blockIdx > maxBlockIndex)
            throw std::invalid_argument(
                "spillFromSource: address " + std::to_string(rec.addr) +
                " exceeds the 32-bit block index at block size " +
                std::to_string(opts.blockBytes));
        const std::uint8_t tf = packTypeFlags(rec.type, rec.flags);
        if (rec.isInstr())
            writer.addInstrRefs(1);
        else
            writer.appendData(std::uint32_t(blockIdx),
                              std::uint8_t(unit), tf);
        if (opts.timedStreams)
            writer.appendCpu(cpu, std::uint32_t(blockIdx),
                             std::uint8_t(unit), tf);
    }
    writer.setUnits(unitsSeen, cpusSeen);

    StoredTraceInfo info;
    info.instrRefs = writer.instrRefs();
    info.dataRefs = writer.dataRefs();
    info.nUnits = unitsSeen;
    info.nCpus = cpusSeen;
    writer.finish();
    info.fileBytes = fileSizeOf(path);
    return info;
}

StoredTraceInfo
writeStored(const PreparedTrace &trace, const std::string &path,
            const StoreWriteOptions &store)
{
    PreparedTraceWriter writer(path, trace.name(), trace.options(),
                               store);
    writer.addInstrRefs(trace.instrRefs());
    writer.appendDataBulk(trace.blockData(), trace.unitData(),
                          trace.typeFlagsData(), trace.dataRefs());
    if (trace.options().timedStreams) {
        const std::vector<PreparedCpuStream> &streams =
            trace.cpuStreams();
        for (unsigned c = 0; c < streams.size(); ++c)
            for (std::size_t i = 0, n = streams[c].size(); i < n; ++i)
                writer.appendCpu(c, streams[c].block[i],
                                 streams[c].unit[i],
                                 streams[c].typeFlags[i]);
    }
    writer.setUnits(trace.numUnits(), trace.numCpus());

    StoredTraceInfo info;
    info.instrRefs = writer.instrRefs();
    info.dataRefs = writer.dataRefs();
    info.nUnits = trace.numUnits();
    info.nCpus = trace.numCpus();
    writer.finish();
    info.fileBytes = fileSizeOf(path);
    return info;
}

} // namespace dirsim::trace
