#include "trace/prepared.hh"

#include <algorithm>
#include <stdexcept>

#include "mem/block.hh"

namespace dirsim::trace
{

namespace
{

/** Raw records per decode chunk: large enough that the per-chunk
 *  bookkeeping vanishes, small enough to spread across workers. */
constexpr std::size_t chunkRecords = 64 * 1024;

/** Largest block index the 32-bit column can hold. */
constexpr std::uint64_t maxBlockIndex = 0xffffffffULL;

/** Dense indices the 8-bit unit column can hold. */
constexpr unsigned maxDenseUnits = 256;

/**
 * First-seen dense numbering over a direct-index table — the same
 * discipline as sim::UnitMapper::map(), reimplemented here so the
 * planning scan can freeze the finished table for the (possibly
 * concurrent) decode workers to read.
 */
unsigned
mapDense(std::vector<std::int32_t> &table, unsigned key,
         unsigned &seen)
{
    if (key >= table.size())
        table.resize(key + 1, -1);
    std::int32_t &slot = table[key];
    if (slot < 0)
        slot = static_cast<std::int32_t>(seen++);
    return static_cast<unsigned>(slot);
}

} // namespace

PreparedTraceBuilder::PreparedTraceBuilder(const MemoryTrace &trace,
                                           const PrepareOptions &opts)
    : _trace(trace)
{
    _out._name = trace.meta().name;
    _out._opts = opts;

    // --- Planning scan: freeze numbering, count, validate ------------
    // The scan applies the same filter and visits records in the same
    // order as the raw replay path, so the dense numbering it freezes
    // is exactly what sim::UnitMapper would assign there.
    const std::vector<TraceRecord> &records = trace.records();
    unsigned unitsSeen = 0;
    unsigned cpusSeen = 0;
    std::uint64_t maxAddr = 0;
    std::uint64_t instrRefs = 0;
    std::size_t dataTotal = 0;
    /** Kept references per dense CPU index so far (timed streams). */
    std::vector<std::size_t> cpuTotal;

    for (std::size_t begin = 0; begin < records.size();
         begin += chunkRecords) {
        ChunkPlan plan;
        plan.rawBegin = begin;
        plan.rawEnd = std::min(begin + chunkRecords, records.size());
        plan.dataOffset = dataTotal;
        if (opts.timedStreams)
            plan.cpuOffset = cpuTotal;

        for (std::size_t i = plan.rawBegin; i < plan.rawEnd; ++i) {
            const TraceRecord &rec = records[i];
            if (opts.dropLockTests && rec.isLockTest())
                continue;
            mapDense(_unitOf, sim::unitKey(rec, opts.domain),
                     unitsSeen);
            const unsigned cpu = mapDense(_cpuOf, rec.cpu, cpusSeen);
            if (rec.addr > maxAddr)
                maxAddr = rec.addr;
            if (rec.isInstr())
                ++instrRefs;
            else
                ++dataTotal;
            if (opts.timedStreams) {
                if (cpu >= cpuTotal.size())
                    cpuTotal.resize(cpu + 1, 0);
                ++cpuTotal[cpu];
            }
        }
        _chunks.push_back(std::move(plan));
    }

    if (unitsSeen > maxDenseUnits)
        throw std::invalid_argument(
            "PreparedTrace: trace '" + _out._name + "' uses " +
            std::to_string(unitsSeen) +
            " sharing units; the prepared 8-bit unit column holds at "
            "most " + std::to_string(maxDenseUnits));
    if (cpusSeen > maxDenseUnits)
        throw std::invalid_argument(
            "PreparedTrace: trace '" + _out._name + "' uses " +
            std::to_string(cpusSeen) +
            " CPUs; the prepared 8-bit unit column holds at most " +
            std::to_string(maxDenseUnits));
    const mem::BlockMapper toBlock(opts.blockBytes);
    if (toBlock(maxAddr) > maxBlockIndex)
        throw std::invalid_argument(
            "PreparedTrace: address " + std::to_string(maxAddr) +
            " exceeds the 32-bit block index at block size " +
            std::to_string(opts.blockBytes));

    // --- Allocate the output columns ---------------------------------
    _out._instrRefs = instrRefs;
    _out._nUnits = unitsSeen;
    _out._nCpus = cpusSeen;
    _out._block.resize(dataTotal);
    _out._unit.resize(dataTotal);
    _out._typeFlags.resize(dataTotal);
    if (opts.timedStreams) {
        _out._cpuStreams.resize(cpusSeen);
        for (unsigned c = 0; c < cpusSeen; ++c) {
            const std::size_t n =
                c < cpuTotal.size() ? cpuTotal[c] : 0;
            _out._cpuStreams[c].block.resize(n);
            _out._cpuStreams[c].unit.resize(n);
            _out._cpuStreams[c].typeFlags.resize(n);
        }
        // Pad every chunk's offset snapshot to the final CPU count: a
        // CPU first seen in a later chunk has written nothing before
        // it, so its prefix offset in earlier chunks is zero.
        for (ChunkPlan &plan : _chunks)
            plan.cpuOffset.resize(cpusSeen, 0);
    }
}

void
PreparedTraceBuilder::decodeChunk(std::size_t chunk)
{
    const ChunkPlan &plan = _chunks.at(chunk);
    const std::vector<TraceRecord> &records = _trace.records();
    const PrepareOptions &opts = _out._opts;
    const mem::BlockMapper toBlock(opts.blockBytes);

    std::size_t dataPos = plan.dataOffset;
    // Local write cursors; each chunk owns a disjoint slice of every
    // column, so concurrent decodeChunk calls never touch the same
    // element.
    std::vector<std::size_t> cpuPos = plan.cpuOffset;

    for (std::size_t i = plan.rawBegin; i < plan.rawEnd; ++i) {
        const TraceRecord &rec = records[i];
        if (opts.dropLockTests && rec.isLockTest())
            continue;
        const unsigned unit = static_cast<unsigned>(
            _unitOf[sim::unitKey(rec, opts.domain)]);
        const std::uint32_t block =
            static_cast<std::uint32_t>(toBlock(rec.addr));
        const std::uint8_t tf = packTypeFlags(rec.type, rec.flags);
        if (!rec.isInstr()) {
            _out._block[dataPos] = block;
            _out._unit[dataPos] = static_cast<std::uint8_t>(unit);
            _out._typeFlags[dataPos] = tf;
            ++dataPos;
        }
        if (opts.timedStreams) {
            const unsigned cpu =
                static_cast<unsigned>(_cpuOf[rec.cpu]);
            PreparedCpuStream &stream = _out._cpuStreams[cpu];
            std::size_t &pos = cpuPos[cpu];
            stream.block[pos] = block;
            stream.unit[pos] = static_cast<std::uint8_t>(unit);
            stream.typeFlags[pos] = tf;
            ++pos;
        }
    }
    _decoded.fetch_add(1, std::memory_order_release);
}

PreparedTrace
PreparedTraceBuilder::finish()
{
    if (_finished)
        throw std::logic_error(
            "PreparedTraceBuilder: finish() called twice");
    if (_decoded.load(std::memory_order_acquire) != _chunks.size())
        throw std::logic_error(
            "PreparedTraceBuilder: finish() before every chunk was "
            "decoded");
    _finished = true;
    return std::move(_out);
}

PreparedTrace
PreparedTrace::fromColumns(std::string name, const PrepareOptions &opts,
                           std::uint64_t instrRefs, unsigned nUnits,
                           unsigned nCpus,
                           util::AlignedVector<std::uint32_t> block,
                           util::AlignedVector<std::uint8_t> unit,
                           util::AlignedVector<std::uint8_t> typeFlags)
{
    if (unit.size() != block.size() ||
        typeFlags.size() != block.size())
        throw std::invalid_argument(
            "PreparedTrace::fromColumns: column lengths differ");
    if (nUnits > maxDenseUnits || nCpus > maxDenseUnits)
        throw std::invalid_argument(
            "PreparedTrace::fromColumns: more than 256 units or CPUs");
    if (opts.timedStreams)
        throw std::invalid_argument(
            "PreparedTrace::fromColumns: timed streams need the "
            "two-phase builder");
    PreparedTrace out;
    out._name = std::move(name);
    out._opts = opts;
    out._instrRefs = instrRefs;
    out._nUnits = nUnits;
    out._nCpus = nCpus;
    out._block = std::move(block);
    out._unit = std::move(unit);
    out._typeFlags = std::move(typeFlags);
    return out;
}

PreparedTrace
PreparedTrace::build(const MemoryTrace &trace,
                     const PrepareOptions &opts)
{
    PreparedTraceBuilder builder(trace, opts);
    for (std::size_t c = 0; c < builder.numChunks(); ++c)
        builder.decodeChunk(c);
    return builder.finish();
}

bool
PreparedTraceSpans::nextSpan(PreparedSpan &span)
{
    const std::size_t total = _trace->dataRefs();
    if (_done || (_pos >= total && total != 0))
        return false;
    const std::size_t n =
        _window == 0 ? total
                     : std::min(_window, total - _pos);
    span.block = _trace->blockData() + _pos;
    span.unit = _trace->unitData() + _pos;
    span.typeFlags = _trace->typeFlagsData() + _pos;
    span.n = n;
    _pos += n;
    // An empty trace yields exactly one empty span, then ends.
    _done = total == 0 || _pos >= total;
    return true;
}

std::size_t
PreparedTrace::byteSize() const
{
    std::size_t bytes = sizeof(*this);
    bytes += _block.capacity() * sizeof(std::uint32_t);
    bytes += _unit.capacity() + _typeFlags.capacity();
    for (const PreparedCpuStream &s : _cpuStreams) {
        bytes += s.block.capacity() * sizeof(std::uint32_t);
        bytes += s.unit.capacity() + s.typeFlags.capacity();
    }
    return bytes;
}

} // namespace dirsim::trace
