/**
 * @file
 * Record filters over RefSources.
 *
 * Section 5.2 of the paper reruns the whole evaluation "excluding all
 * the tests on locks"; dropLockTests() reproduces that experiment.  The
 * generic predicate filter supports ad-hoc studies (user-only traces,
 * single-CPU slices, and so on).
 */

#ifndef DIRSIM_TRACE_FILTER_HH
#define DIRSIM_TRACE_FILTER_HH

#include <functional>
#include <utility>

#include "trace/ref_source.hh"

namespace dirsim::trace
{

/** Passes through only records matching a predicate. */
class FilteredSource : public RefSource
{
  public:
    using Predicate = std::function<bool(const TraceRecord &)>;

    /**
     * @param inner Upstream source; must outlive the filter.
     * @param keep Predicate returning true for records to pass through.
     */
    FilteredSource(RefSource &inner, Predicate keep)
        : _inner(inner), _keep(std::move(keep))
    {
    }

    bool next(TraceRecord &record) override;
    void rewind() override { _inner.rewind(); }

  private:
    RefSource &_inner;
    Predicate _keep;
};

/** Drop spin-lock test reads (the Section 5.2 experiment). */
FilteredSource dropLockTests(RefSource &inner);
/** Drop instruction fetches, leaving only data references. */
FilteredSource dropInstructions(RefSource &inner);
/** Drop operating-system references, leaving user activity only. */
FilteredSource dropSystemRefs(RefSource &inner);

} // namespace dirsim::trace

#endif // DIRSIM_TRACE_FILTER_HH
