#include "trace/characterize.hh"

#include "util/flat_map.hh"

namespace dirsim::trace
{

double
TraceCharacteristics::readWriteRatio() const
{
    if (dataWrites == 0)
        return 0.0;
    return static_cast<double>(dataReads) /
           static_cast<double>(dataWrites);
}

double
TraceCharacteristics::lockTestReadFrac() const
{
    if (dataReads == 0)
        return 0.0;
    return static_cast<double>(lockTestReads) /
           static_cast<double>(dataReads);
}

TraceCharacteristics
characterize(RefSource &source, const std::string &name,
             unsigned blockBytes)
{
    TraceCharacteristics ch;
    ch.name = name;

    // Per data block: the first process to touch it, or 0xffff once a
    // second process has been seen (the block is then "shared").
    struct BlockInfo
    {
        std::uint16_t firstPid = 0;
        bool shared = false;
        std::uint64_t refs = 0;
        std::uint64_t writes = 0;
    };
    util::FlatMap<std::uint64_t, BlockInfo> blocks;

    TraceRecord rec;
    while (source.next(rec)) {
        ++ch.refs;
        if (rec.isSystem())
            ++ch.system;
        else
            ++ch.user;
        if (rec.isInstr()) {
            ++ch.instr;
            continue;
        }
        if (rec.isRead()) {
            ++ch.dataReads;
            if (rec.isLockTest())
                ++ch.lockTestReads;
        } else {
            ++ch.dataWrites;
        }

        const std::uint64_t block = rec.addr / blockBytes;
        auto [info, inserted] = blocks.tryEmplace(block);
        if (inserted)
            info.firstPid = rec.pid;
        else if (!info.shared && info.firstPid != rec.pid)
            info.shared = true;
        ++info.refs;
        if (rec.isWrite())
            ++info.writes;
    }

    ch.uniqueDataBlocks = blocks.size();
    blocks.forEach([&ch](std::uint64_t, const BlockInfo &info) {
        if (info.shared) {
            ++ch.sharedDataBlocks;
            ch.refsToSharedBlocks += info.refs;
            ch.writesToSharedBlocks += info.writes;
        }
    });
    return ch;
}

} // namespace dirsim::trace
