#include "trace/io.hh"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/hash.hh"

namespace dirsim::trace
{

namespace
{

constexpr std::array<char, 4> binaryMagic = {'D', 'S', 'T', 'R'};
constexpr std::uint32_t binaryVersion = 2;
// Oldest version readBinary() still accepts: v1 files lack the digest
// footer but are otherwise identical, so they stay readable.
constexpr std::uint32_t binaryVersionMin = 1;
/** Cap on the header name field.  A corrupt length would otherwise
 *  turn into a multi-gigabyte resize before the truncation check. */
constexpr std::uint32_t maxNameLen = 4096;

template <typename T>
void
writeRaw(std::ostream &os, const T &value, util::StreamHash64 *hash)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(value));
    if (hash != nullptr)
        hash->update(&value, sizeof(value));
}

template <typename T>
T
readRaw(std::istream &is, util::StreamHash64 *hash)
{
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof(value));
    if (!is)
        throw std::runtime_error("trace: truncated binary stream");
    if (hash != nullptr)
        hash->update(&value, sizeof(value));
    return value;
}

char
typeChar(RefType type)
{
    switch (type) {
      case RefType::Instr:
        return 'I';
      case RefType::Read:
        return 'R';
      case RefType::Write:
        return 'W';
    }
    return '?';
}

RefType
typeFromChar(char ch)
{
    switch (ch) {
      case 'I':
        return RefType::Instr;
      case 'R':
        return RefType::Read;
      case 'W':
        return RefType::Write;
      default:
        throw std::runtime_error(
            std::string("trace: bad reference type '") + ch + "'");
    }
}

/**
 * Range-check a parsed text-trace field against its record width.
 * A silent static_cast here once turned cpu 256 into cpu 0 — a
 * different processor — so out-of-range values are an error.
 */
std::uint64_t
checkField(long long value, std::uint64_t max, const char *field,
           const std::string &line)
{
    if (value < 0 || static_cast<std::uint64_t>(value) > max) {
        throw std::runtime_error(
            "trace: " + std::string(field) + " " +
            std::to_string(value) + " out of range (max " +
            std::to_string(max) + ") in text record: " + line);
    }
    return static_cast<std::uint64_t>(value);
}

} // namespace

void
writeBinary(const MemoryTrace &trace, std::ostream &os)
{
    // The digest covers everything after the version field, so a v1
    // reader meeting a v2 file (or vice versa) reports a version
    // mismatch, never a digest one.
    util::StreamHash64 digest;
    os.write(binaryMagic.data(), binaryMagic.size());
    writeRaw(os, binaryVersion, nullptr);
    writeRaw(os, static_cast<std::uint32_t>(trace.meta().nCpus),
             &digest);
    writeRaw(os, static_cast<std::uint32_t>(trace.meta().nProcesses),
             &digest);
    const std::string &name = trace.meta().name;
    if (name.size() > maxNameLen)
        throw std::runtime_error("trace: name longer than " +
                                 std::to_string(maxNameLen) +
                                 " bytes");
    writeRaw(os, static_cast<std::uint32_t>(name.size()), &digest);
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    digest.update(name.data(), name.size());
    writeRaw(os, static_cast<std::uint64_t>(trace.meta().lockAddrs.size()),
             &digest);
    for (std::uint64_t addr : trace.meta().lockAddrs)
        writeRaw(os, addr, &digest);
    writeRaw(os, static_cast<std::uint64_t>(trace.size()), &digest);
    for (const TraceRecord &rec : trace.records()) {
        writeRaw(os, rec.addr, &digest);
        writeRaw(os, rec.pid, &digest);
        writeRaw(os, rec.cpu, &digest);
        writeRaw(os, static_cast<std::uint8_t>(rec.type), &digest);
        writeRaw(os, rec.flags, &digest);
        const std::array<char, 3> pad = {0, 0, 0};
        os.write(pad.data(), pad.size());
        digest.update(pad.data(), pad.size());
    }
    writeRaw(os, digest.value(), nullptr);
    if (!os)
        throw std::runtime_error("trace: binary write failed");
}

MemoryTrace
readBinary(std::istream &is)
{
    std::array<char, 4> magic{};
    is.read(magic.data(), magic.size());
    if (!is || magic != binaryMagic)
        throw std::runtime_error("trace: bad binary magic");
    const auto version = readRaw<std::uint32_t>(is, nullptr);
    if (version < binaryVersionMin || version > binaryVersion)
        throw std::runtime_error(
            "trace: unsupported binary version " +
            std::to_string(version) + " (this build reads " +
            std::to_string(binaryVersionMin) + "-" +
            std::to_string(binaryVersion) + ")");
    // v1 files predate the digest footer; everything else is shared.
    util::StreamHash64 running;
    util::StreamHash64 *digest = version >= 2 ? &running : nullptr;

    TraceMeta meta;
    meta.nCpus = readRaw<std::uint32_t>(is, digest);
    meta.nProcesses = readRaw<std::uint32_t>(is, digest);
    const auto name_len = readRaw<std::uint32_t>(is, digest);
    if (name_len > maxNameLen)
        throw std::runtime_error("trace: name length " +
                                 std::to_string(name_len) +
                                 " exceeds the " +
                                 std::to_string(maxNameLen) +
                                 "-byte cap");
    meta.name.resize(name_len);
    is.read(meta.name.data(), name_len);
    if (!is)
        throw std::runtime_error("trace: truncated binary stream");
    if (digest != nullptr)
        digest->update(meta.name.data(), name_len);
    const auto n_locks = readRaw<std::uint64_t>(is, digest);
    for (std::uint64_t i = 0; i < n_locks; ++i)
        meta.lockAddrs.insert(readRaw<std::uint64_t>(is, digest));

    MemoryTrace trace(std::move(meta));
    const auto n_records = readRaw<std::uint64_t>(is, digest);
    // Pre-size, but never trust a (possibly corrupt) record count
    // with an unbounded allocation: a truncated stream throws on the
    // first missing record anyway.
    trace.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(n_records, 1u << 20)));
    for (std::uint64_t i = 0; i < n_records; ++i) {
        TraceRecord rec;
        rec.addr = readRaw<std::uint64_t>(is, digest);
        rec.pid = readRaw<std::uint16_t>(is, digest);
        rec.cpu = readRaw<std::uint8_t>(is, digest);
        const auto type = readRaw<std::uint8_t>(is, digest);
        if (type > static_cast<std::uint8_t>(RefType::Write))
            throw std::runtime_error("trace: bad reference type byte");
        rec.type = static_cast<RefType>(type);
        rec.flags = readRaw<std::uint8_t>(is, digest);
        std::array<char, 3> pad{};
        is.read(pad.data(), pad.size());
        if (!is)
            throw std::runtime_error("trace: truncated binary stream");
        if (digest != nullptr)
            digest->update(pad.data(), pad.size());
        trace.append(rec);
    }
    if (digest != nullptr) {
        const auto stored = readRaw<std::uint64_t>(is, nullptr);
        if (stored != digest->value())
            throw std::runtime_error(
                "trace: binary stream digest mismatch (corrupt or "
                "tampered file)");
    }
    // A well-formed stream ends exactly here; bytes past the last
    // record (or footer) mean the header counts and the payload
    // disagree.
    if (is.peek() != std::istream::traits_type::eof())
        throw std::runtime_error(
            "trace: trailing bytes after binary stream");
    is.clear();
    if (!is)
        throw std::runtime_error("trace: truncated binary stream");
    return trace;
}

void
writeText(const MemoryTrace &trace, std::ostream &os)
{
    os << "# name " << trace.meta().name << "\n";
    os << "# ncpus " << trace.meta().nCpus << "\n";
    os << "# nprocesses " << trace.meta().nProcesses << "\n";
    for (std::uint64_t addr : trace.meta().lockAddrs)
        os << "# lock 0x" << std::hex << addr << std::dec << "\n";
    for (const TraceRecord &rec : trace.records()) {
        os << static_cast<unsigned>(rec.cpu) << ' ' << rec.pid << ' '
           << typeChar(rec.type) << " 0x" << std::hex << rec.addr
           << std::dec << ' ' << static_cast<unsigned>(rec.flags)
           << "\n";
    }
}

MemoryTrace
readText(std::istream &is)
{
    MemoryTrace trace;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        if (line[0] == '#') {
            std::istringstream ls(line.substr(1));
            std::string key;
            ls >> key;
            if (key == "name") {
                ls >> trace.meta().name;
            } else if (key == "ncpus") {
                ls >> trace.meta().nCpus;
            } else if (key == "nprocesses") {
                ls >> trace.meta().nProcesses;
            } else if (key == "lock") {
                std::uint64_t addr = 0;
                ls >> std::hex >> addr;
                trace.meta().lockAddrs.insert(addr);
            }
            continue;
        }
        std::istringstream ls(line);
        // Parse into wide signed types so out-of-range (or negative)
        // values survive extraction and can be rejected explicitly
        // instead of wrapping into a valid-looking record.
        long long cpu = 0;
        long long pid = 0;
        char type_ch = '?';
        std::uint64_t addr = 0;
        long long flags = 0;
        ls >> cpu >> pid >> type_ch >> std::hex >> addr >> std::dec >>
            flags;
        if (ls.fail())
            throw std::runtime_error("trace: bad text record: " + line);
        TraceRecord rec;
        rec.cpu = static_cast<std::uint8_t>(
            checkField(cpu, 0xff, "cpu", line));
        rec.pid = static_cast<std::uint16_t>(
            checkField(pid, 0xffff, "pid", line));
        rec.type = typeFromChar(type_ch);
        rec.addr = addr;
        rec.flags = static_cast<std::uint8_t>(
            checkField(flags, 0xff, "flags", line));
        trace.append(rec);
    }
    // Header counts, when declared, bound the ids the records may
    // use; a record outside them would index past the caches and
    // processes a consumer sized from the header.  Checked after the
    // parse so "# ncpus"/"# nprocesses" lines may appear anywhere.
    const TraceMeta &meta = trace.meta();
    for (const TraceRecord &rec : trace.records()) {
        if (meta.nCpus != 0 && rec.cpu >= meta.nCpus)
            throw std::runtime_error(
                "trace: record cpu " + std::to_string(rec.cpu) +
                " outside declared ncpus " +
                std::to_string(meta.nCpus));
        if (meta.nProcesses != 0 && rec.pid >= meta.nProcesses)
            throw std::runtime_error(
                "trace: record pid " + std::to_string(rec.pid) +
                " outside declared nprocesses " +
                std::to_string(meta.nProcesses));
    }
    return trace;
}

void
saveBinaryFile(const MemoryTrace &trace, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("trace: cannot open for write: " + path);
    writeBinary(trace, os);
}

MemoryTrace
loadBinaryFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("trace: cannot open for read: " + path);
    return readBinary(is);
}

} // namespace dirsim::trace
