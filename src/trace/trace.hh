/**
 * @file
 * In-memory trace container and its RefSource adaptor.
 */

#ifndef DIRSIM_TRACE_TRACE_HH
#define DIRSIM_TRACE_TRACE_HH

#include <cstddef>
#include <string>
#include <unordered_set>
#include <vector>

#include "trace/record.hh"
#include "trace/ref_source.hh"

namespace dirsim::trace
{

/**
 * Trace-wide metadata.
 *
 * The lock address set lets consumers identify synchronisation
 * variables without relying on the per-record flags (recorded traces
 * from other tools may carry only addresses).
 */
struct TraceMeta
{
    std::string name;       //!< Workload name, e.g.\ "pops".
    unsigned nCpus = 0;     //!< Number of CPUs that issued references.
    unsigned nProcesses = 0;//!< Number of distinct application processes.
    /** Byte addresses of lock words used by the workload. */
    std::unordered_set<std::uint64_t> lockAddrs;
};

/** A fully materialised trace: metadata plus an ordered record list. */
class MemoryTrace
{
  public:
    MemoryTrace() = default;
    explicit MemoryTrace(TraceMeta meta) : _meta(std::move(meta)) {}

    const TraceMeta &meta() const { return _meta; }
    TraceMeta &meta() { return _meta; }

    void append(const TraceRecord &record) { _records.push_back(record); }
    void reserve(std::size_t n) { _records.reserve(n); }

    std::size_t size() const { return _records.size(); }
    bool empty() const { return _records.empty(); }
    const TraceRecord &operator[](std::size_t i) const
    {
        return _records[i];
    }
    const std::vector<TraceRecord> &records() const { return _records; }

    /**
     * Fill this trace by draining a source.
     *
     * @param source Stream to drain (consumed to exhaustion).
     * @param limit Stop after this many records (0 = unlimited).
     * @return Number of records appended.
     */
    std::size_t fillFrom(RefSource &source, std::size_t limit = 0);

  private:
    TraceMeta _meta;
    std::vector<TraceRecord> _records;
};

/** Replays a MemoryTrace through the RefSource interface. */
class MemoryTraceSource : public RefSource
{
  public:
    /** @param trace Trace to replay; must outlive the source. */
    explicit MemoryTraceSource(const MemoryTrace &trace) : _trace(trace) {}

    bool next(TraceRecord &record) override;
    std::size_t nextBatch(TraceRecord *out, std::size_t max) override;
    void rewind() override { _pos = 0; }

  private:
    const MemoryTrace &_trace;
    std::size_t _pos = 0;
};

} // namespace dirsim::trace

#endif // DIRSIM_TRACE_TRACE_HH
