/**
 * @file
 * Memory-reference trace record.
 *
 * Mirrors the information the multiprocessor ATUM traces of the paper
 * carry: which CPU issued the reference, which process was running on
 * it, the reference type, and the virtual address.  Two extra flag bits
 * annotate properties the paper's authors recovered by hand from their
 * traces: whether the reference is operating-system activity (Table 3
 * separates user from system references) and whether a read is the
 * "test" part of a test-and-test-and-set spin lock (Section 5.2 reruns
 * the evaluation with those reads excluded).
 */

#ifndef DIRSIM_TRACE_RECORD_HH
#define DIRSIM_TRACE_RECORD_HH

#include <cstdint>
#include <type_traits>

namespace dirsim::trace
{

/** Kind of memory reference. */
enum class RefType : std::uint8_t
{
    Instr = 0, //!< Instruction fetch.
    Read = 1,  //!< Data read.
    Write = 2, //!< Data write.
};

/** Annotation flags carried by each record. */
enum RecordFlags : std::uint8_t
{
    FlagNone = 0,
    /** Reference was issued by operating-system code. */
    FlagSystem = 1 << 0,
    /** Read is a spin-lock test (first test of test-and-test-and-set). */
    FlagLockTest = 1 << 1,
    /** Write is part of a lock acquire or release. */
    FlagLockWrite = 1 << 2,
};

/** One interleaved multiprocessor memory reference. */
struct TraceRecord
{
    std::uint64_t addr = 0; //!< Byte address.
    std::uint16_t pid = 0;  //!< Identifier of the issuing process.
    std::uint8_t cpu = 0;   //!< Identifier of the issuing CPU.
    RefType type = RefType::Instr;
    std::uint8_t flags = FlagNone;

    bool isInstr() const { return type == RefType::Instr; }
    bool isRead() const { return type == RefType::Read; }
    bool isWrite() const { return type == RefType::Write; }
    bool isData() const { return type != RefType::Instr; }
    bool isSystem() const { return flags & FlagSystem; }
    bool isLockTest() const { return flags & FlagLockTest; }
    bool isLockWrite() const { return flags & FlagLockWrite; }

    bool
    operator==(const TraceRecord &other) const
    {
        return addr == other.addr && pid == other.pid &&
               cpu == other.cpu && type == other.type &&
               flags == other.flags;
    }
};

// The binary trace format and the batched replay path both treat
// records as flat bytes; a size or triviality change would silently
// alter the on-disk layout and the memcpy-based batch copies.
static_assert(sizeof(TraceRecord) == 16,
              "TraceRecord layout is load-bearing (trace/io.cc)");
static_assert(std::is_trivially_copyable_v<TraceRecord>,
              "TraceRecord must be memcpy-safe for batched replay");

/**
 * @name Packed type+flags byte of the prepared (SoA) trace format.
 *
 * One byte per reference: the RefType in the low two bits, the
 * RecordFlags shifted above them.  The three defined flags fit with
 * three bits to spare; the static_asserts below pin that layout so a
 * new flag cannot silently collide with the type field.
 * @{
 */
constexpr std::uint8_t packedTypeBits = 2;
constexpr std::uint8_t packedTypeMask = (1u << packedTypeBits) - 1;

constexpr std::uint8_t
packTypeFlags(RefType type, std::uint8_t flags)
{
    return static_cast<std::uint8_t>(
        static_cast<std::uint8_t>(type) |
        static_cast<std::uint8_t>(flags << packedTypeBits));
}

constexpr RefType
packedRefType(std::uint8_t packed)
{
    return static_cast<RefType>(packed & packedTypeMask);
}

constexpr std::uint8_t
packedFlags(std::uint8_t packed)
{
    return static_cast<std::uint8_t>(packed >> packedTypeBits);
}

static_assert(static_cast<unsigned>(RefType::Write) <= packedTypeMask,
              "RefType must fit the packed type field");
static_assert((FlagSystem | FlagLockTest | FlagLockWrite) <=
                  (0xff >> packedTypeBits),
              "RecordFlags must fit above the packed type field");
static_assert(packedRefType(packTypeFlags(RefType::Write,
                                          FlagLockWrite)) ==
              RefType::Write);
static_assert(packedFlags(packTypeFlags(RefType::Read, FlagLockTest)) ==
              FlagLockTest);
/** @} */

} // namespace dirsim::trace

#endif // DIRSIM_TRACE_RECORD_HH
