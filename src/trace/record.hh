/**
 * @file
 * Memory-reference trace record.
 *
 * Mirrors the information the multiprocessor ATUM traces of the paper
 * carry: which CPU issued the reference, which process was running on
 * it, the reference type, and the virtual address.  Two extra flag bits
 * annotate properties the paper's authors recovered by hand from their
 * traces: whether the reference is operating-system activity (Table 3
 * separates user from system references) and whether a read is the
 * "test" part of a test-and-test-and-set spin lock (Section 5.2 reruns
 * the evaluation with those reads excluded).
 */

#ifndef DIRSIM_TRACE_RECORD_HH
#define DIRSIM_TRACE_RECORD_HH

#include <cstdint>

namespace dirsim::trace
{

/** Kind of memory reference. */
enum class RefType : std::uint8_t
{
    Instr = 0, //!< Instruction fetch.
    Read = 1,  //!< Data read.
    Write = 2, //!< Data write.
};

/** Annotation flags carried by each record. */
enum RecordFlags : std::uint8_t
{
    FlagNone = 0,
    /** Reference was issued by operating-system code. */
    FlagSystem = 1 << 0,
    /** Read is a spin-lock test (first test of test-and-test-and-set). */
    FlagLockTest = 1 << 1,
    /** Write is part of a lock acquire or release. */
    FlagLockWrite = 1 << 2,
};

/** One interleaved multiprocessor memory reference. */
struct TraceRecord
{
    std::uint64_t addr = 0; //!< Byte address.
    std::uint16_t pid = 0;  //!< Identifier of the issuing process.
    std::uint8_t cpu = 0;   //!< Identifier of the issuing CPU.
    RefType type = RefType::Instr;
    std::uint8_t flags = FlagNone;

    bool isInstr() const { return type == RefType::Instr; }
    bool isRead() const { return type == RefType::Read; }
    bool isWrite() const { return type == RefType::Write; }
    bool isData() const { return type != RefType::Instr; }
    bool isSystem() const { return flags & FlagSystem; }
    bool isLockTest() const { return flags & FlagLockTest; }
    bool isLockWrite() const { return flags & FlagLockWrite; }

    bool
    operator==(const TraceRecord &other) const
    {
        return addr == other.addr && pid == other.pid &&
               cpu == other.cpu && type == other.type &&
               flags == other.flags;
    }
};

} // namespace dirsim::trace

#endif // DIRSIM_TRACE_RECORD_HH
