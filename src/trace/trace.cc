#include "trace/trace.hh"

#include <algorithm>
#include <cstring>

namespace dirsim::trace
{

std::size_t
MemoryTrace::fillFrom(RefSource &source, std::size_t limit)
{
    std::size_t added = 0;
    TraceRecord record;
    while ((limit == 0 || added < limit) && source.next(record)) {
        _records.push_back(record);
        ++added;
    }
    return added;
}

bool
MemoryTraceSource::next(TraceRecord &record)
{
    if (_pos >= _trace.size())
        return false;
    record = _trace[_pos++];
    return true;
}

std::size_t
MemoryTraceSource::nextBatch(TraceRecord *out, std::size_t max)
{
    const std::size_t n = std::min(max, _trace.size() - _pos);
    if (n != 0)
        std::memcpy(out, _trace.records().data() + _pos,
                    n * sizeof(TraceRecord));
    _pos += n;
    return n;
}

} // namespace dirsim::trace
