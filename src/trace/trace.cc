#include "trace/trace.hh"

namespace dirsim::trace
{

std::size_t
MemoryTrace::fillFrom(RefSource &source, std::size_t limit)
{
    std::size_t added = 0;
    TraceRecord record;
    while ((limit == 0 || added < limit) && source.next(record)) {
        _records.push_back(record);
        ++added;
    }
    return added;
}

bool
MemoryTraceSource::next(TraceRecord &record)
{
    if (_pos >= _trace.size())
        return false;
    record = _trace[_pos++];
    return true;
}

} // namespace dirsim::trace
