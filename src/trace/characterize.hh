/**
 * @file
 * Trace characterisation (reproduces Table 3 of the paper).
 *
 * Table 3 summarises each trace as total references, instruction
 * fetches, data reads, data writes, and the user/system split.  The
 * characteriser additionally reports sharing structure used elsewhere
 * in the evaluation: unique blocks, blocks touched by more than one
 * process, and the fraction of reads that are lock spins.
 */

#ifndef DIRSIM_TRACE_CHARACTERIZE_HH
#define DIRSIM_TRACE_CHARACTERIZE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/ref_source.hh"

namespace dirsim::trace
{

/** Summary counts for one trace. */
struct TraceCharacteristics
{
    std::string name;
    std::uint64_t refs = 0;      //!< All references.
    std::uint64_t instr = 0;     //!< Instruction fetches.
    std::uint64_t dataReads = 0; //!< Data reads.
    std::uint64_t dataWrites = 0;//!< Data writes.
    std::uint64_t user = 0;      //!< User-mode references.
    std::uint64_t system = 0;    //!< Operating-system references.
    std::uint64_t lockTestReads = 0; //!< Spin-lock test reads.

    std::uint64_t uniqueDataBlocks = 0; //!< Distinct data blocks.
    /** Data blocks referenced by more than one process. */
    std::uint64_t sharedDataBlocks = 0;
    /** Data references that touch a block shared between processes. */
    std::uint64_t refsToSharedBlocks = 0;
    /** Data writes that touch a shared block. */
    std::uint64_t writesToSharedBlocks = 0;

    /** Reads per write (Table 3 traces are read-heavy). */
    double readWriteRatio() const;
    /** Fraction of data reads that are spin-lock tests. */
    double lockTestReadFrac() const;
};

/**
 * Scan @p source to exhaustion and summarise it.
 *
 * @param source Stream to characterise (left at end of stream).
 * @param name Label copied into the result.
 * @param blockBytes Coherence block size used for block statistics.
 */
TraceCharacteristics characterize(RefSource &source,
                                  const std::string &name,
                                  unsigned blockBytes = 16);

} // namespace dirsim::trace

#endif // DIRSIM_TRACE_CHARACTERIZE_HH
