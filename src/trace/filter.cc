#include "trace/filter.hh"

namespace dirsim::trace
{

bool
FilteredSource::next(TraceRecord &record)
{
    TraceRecord candidate;
    while (_inner.next(candidate)) {
        if (_keep(candidate)) {
            record = candidate;
            return true;
        }
    }
    return false;
}

FilteredSource
dropLockTests(RefSource &inner)
{
    return FilteredSource(inner, [](const TraceRecord &rec) {
        return !rec.isLockTest();
    });
}

FilteredSource
dropInstructions(RefSource &inner)
{
    return FilteredSource(inner, [](const TraceRecord &rec) {
        return rec.isData();
    });
}

FilteredSource
dropSystemRefs(RefSource &inner)
{
    return FilteredSource(inner, [](const TraceRecord &rec) {
        return !rec.isSystem();
    });
}

} // namespace dirsim::trace
