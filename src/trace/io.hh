/**
 * @file
 * Trace serialisation: a compact binary format and a readable text
 * format.
 *
 * Binary layout (little-endian):
 *   magic "DSTR" | u32 version | u32 nCpus | u32 nProcesses |
 *   u32 nameLen | name bytes | u64 nLocks | nLocks * u64 lockAddr |
 *   u64 nRecords | nRecords * { u64 addr, u16 pid, u8 cpu, u8 type,
 *                               u8 flags, u8 pad[3] } |
 *   u64 digest (v2+)
 *
 * Version 2 appends a streaming-hash digest of every byte after the
 * version field, so payload corruption that still parses (a flipped
 * address bit, say) is caught; the reader also requires the stream to
 * end exactly at the last record/footer and caps the name length at
 * 4096 bytes before allocating.  Version 1 files (no footer) remain
 * readable through a compat path with the same truncation and
 * trailing-byte checks.
 *
 * Text format: one "# key value" header line per metadata field, then
 * one record per line: "<cpu> <pid> <I|R|W> <hex addr> <flags>".
 */

#ifndef DIRSIM_TRACE_IO_HH
#define DIRSIM_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/trace.hh"

namespace dirsim::trace
{

/** Serialise @p trace to @p os in the binary format. */
void writeBinary(const MemoryTrace &trace, std::ostream &os);
/**
 * Parse a binary trace from @p is.
 * @throws std::runtime_error on malformed input.
 */
MemoryTrace readBinary(std::istream &is);

/** Serialise @p trace to @p os in the text format. */
void writeText(const MemoryTrace &trace, std::ostream &os);
/**
 * Parse a text trace from @p is.
 * @throws std::runtime_error on malformed input.
 */
MemoryTrace readText(std::istream &is);

/** Convenience file wrappers; throw std::runtime_error on I/O error. */
void saveBinaryFile(const MemoryTrace &trace, const std::string &path);
MemoryTrace loadBinaryFile(const std::string &path);

} // namespace dirsim::trace

#endif // DIRSIM_TRACE_IO_HH
