/**
 * @file
 * Decode-once prepared traces: the SoA replay format.
 *
 * The paper replays one interleaved reference stream through every
 * protocol (Section 4.1), yet the raw replay path re-decodes every
 * 16-byte TraceRecord — block shift, unit mapping, instruction strip,
 * flag tests — once per (workload × scheme) sweep point.  A
 * PreparedTrace pays that decode exactly once: records are lowered to
 * structure-of-arrays columns (32-bit block index, 8-bit dense unit
 * index, packed type+flags byte — ~6 bytes per reference instead of
 * 16), instruction fetches are stripped into a single bulk count, and
 * the data references become one dense contiguous scan that
 * CoherenceEngine::accessPrepared consumes directly.
 *
 * Determinism is the contract that makes this safe: the decode uses
 * the same mem::BlockMapper and sim::UnitMapper first-seen numbering
 * as sim::Simulator and timing::TimedBusSim, over the same
 * (optionally lock-test-filtered) record order, so replaying the
 * prepared stream is bit-identical to replaying the raw trace — the
 * golden digest suite enforces this for every scheme × workload.
 *
 * Decoding parallelises: PreparedTraceBuilder plans the output layout
 * in one serial scan (freezing the unit numbering and per-chunk write
 * offsets), after which decodeChunk() calls write disjoint ranges and
 * may run on any threads in any order — the merge is deterministic by
 * construction.  sim::TraceRepository drives this and memoizes the
 * result per workload.
 */

#ifndef DIRSIM_TRACE_PREPARED_HH
#define DIRSIM_TRACE_PREPARED_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

// Header-only; pulls in no sim library code.  Sharing SharingDomain
// and unitKey() is the point: prepared unit numbering must match
// what the raw replay path's UnitMapper would compute.
#include "sim/unit_map.hh"
#include "trace/record.hh"
#include "trace/trace.hh"
#include "util/simd.hh"

namespace dirsim::trace
{

/** Decode parameters a PreparedTrace is specialised for. */
struct PrepareOptions
{
    unsigned blockBytes = 16; //!< The paper's 4-word block.
    sim::SharingDomain domain = sim::SharingDomain::Process;
    /** Drop spin-lock test reads (Section 5.2's filtered rerun). */
    bool dropLockTests = false;
    /**
     * Also build per-CPU streams (instruction fetches included) for
     * timed-bus replay.  Off by default: the timed columns roughly
     * double the footprint and only timing::TimedBusSim reads them.
     */
    bool timedStreams = false;

    bool operator==(const PrepareOptions &) const = default;
};

/**
 * One CPU's slice of the stream in SoA form, for timed replay.
 * Unlike the interleaved data columns, these keep instruction
 * fetches: the timed bus charges CPU cycles per reference, so the
 * instr/data interleaving is part of the timing model.
 */
struct PreparedCpuStream
{
    util::AlignedVector<std::uint32_t> block;
    util::AlignedVector<std::uint8_t> unit;
    util::AlignedVector<std::uint8_t> typeFlags;

    std::size_t size() const { return block.size(); }
};

// The SoA columns are the prepared format's wire layout; replay does
// raw pointer arithmetic over them.
static_assert(sizeof(std::uint32_t) == 4 && sizeof(std::uint8_t) == 1,
              "prepared SoA element widths are load-bearing");

// util/simd.hh cannot include trace headers (layering), so it hard-
// codes the packed byte's type field; pin the two constants together.
static_assert(packedTypeMask == util::kTypeLaneMask,
              "util::kTypeLaneMask must match the packed type field");

class PreparedTraceBuilder;
class StoredTrace;

/**
 * One contiguous window of prepared data-reference columns: parallel
 * arrays of block index, dense unit index and packed type+flags byte.
 * The chunk-iterator replay path (sim::Simulator over a
 * PreparedSpanSource) consumes a *sequence* of these instead of one
 * trace-length slice, so the backing storage only ever needs to keep
 * one window resident — the out-of-core store (trace/store.hh) serves
 * spans straight out of a windowed file mapping.
 */
struct PreparedSpan
{
    const std::uint32_t *block = nullptr;
    const std::uint8_t *unit = nullptr;
    const std::uint8_t *typeFlags = nullptr;
    std::size_t n = 0;
};

/**
 * A forward iterator over the spans of one prepared reference stream,
 * plus the stream-level summary replay drivers validate against.
 *
 * Contract: the concatenation of the spans nextSpan() yields, in
 * order, is exactly the stream's data-reference columns; a span's
 * pointers stay valid until the next nextSpan()/rewind() call (the
 * out-of-core cursor recycles its window).  Engines are stateful
 * across spans, so replaying a span sequence is bit-identical to
 * replaying one contiguous slice — span boundaries are invisible to
 * the coherence model.
 */
class PreparedSpanSource
{
  public:
    virtual ~PreparedSpanSource() = default;

    /** @name Stream summary (mirrors PreparedTrace's accessors). */
    /** @{ */
    virtual const std::string &name() const = 0;
    virtual const PrepareOptions &options() const = 0;
    virtual std::uint64_t instrRefs() const = 0;
    virtual std::uint64_t dataRefs() const = 0;
    virtual unsigned numUnits() const = 0;
    virtual unsigned numCpus() const = 0;
    std::uint64_t totalRefs() const { return instrRefs() + dataRefs(); }
    /** @} */

    /**
     * Produce the next span.
     * @retval true @p span was filled (n may legitimately be 0 only
     *         for an empty stream's single span — sources never yield
     *         empty spans between non-empty ones).
     * @retval false End of stream; @p span is untouched.
     */
    virtual bool nextSpan(PreparedSpan &span) = 0;

    /** Restart the span sequence from the beginning. */
    virtual void rewind() = 0;
};

/**
 * Sequential reader over one CPU's timed stream (instruction fetches
 * included), the per-CPU analogue of PreparedSpanSource.  The timed
 * bus replays one of these per port; atEnd() may do work (refill a
 * file window), so it is deliberately non-const.
 */
class CpuRefCursor
{
  public:
    virtual ~CpuRefCursor() = default;

    /** The stream is exhausted (may refill an internal window). */
    virtual bool atEnd() = 0;

    /** Consume the next reference; atEnd() must have returned false. */
    virtual void take(std::uint32_t &block, std::uint8_t &unit,
                      std::uint8_t &typeFlags) = 0;
};

/** CpuRefCursor over an in-memory PreparedCpuStream. */
class PreparedCpuStreamCursor final : public CpuRefCursor
{
  public:
    /** @param stream Stream to walk; must outlive the cursor. */
    explicit PreparedCpuStreamCursor(const PreparedCpuStream &stream)
        : _stream(&stream)
    {
    }

    bool atEnd() override { return _next >= _stream->size(); }

    void
    take(std::uint32_t &block, std::uint8_t &unit,
         std::uint8_t &typeFlags) override
    {
        block = _stream->block[_next];
        unit = _stream->unit[_next];
        typeFlags = _stream->typeFlags[_next];
        ++_next;
    }

  private:
    const PreparedCpuStream *_stream;
    std::size_t _next = 0;
};

/**
 * An immutable decoded trace.  Build one with build() (serial) or via
 * PreparedTraceBuilder (parallel chunk decode); afterwards the object
 * is read-only and safe to share across threads.
 */
class PreparedTrace
{
  public:
    /** Decode @p trace in one serial pass. */
    static PreparedTrace build(const MemoryTrace &trace,
                               const PrepareOptions &opts = {});

    /**
     * Assemble a trace from already-finished columns — the exit of
     * the direct generate→prepare pipeline (gen/direct_prepare.cc),
     * which fills the columns without ever materialising a
     * MemoryTrace.
     *
     * Caller contract (the class invariants build() establishes): the
     * three columns are equal-length and ordered exactly as the
     * stream's kept data references; @p unit holds first-seen dense
     * indices below @p nUnits; @p nUnits and @p nCpus are at most 256.
     * No per-CPU timed streams (use the builder for those).
     */
    static PreparedTrace
    fromColumns(std::string name, const PrepareOptions &opts,
                std::uint64_t instrRefs, unsigned nUnits,
                unsigned nCpus,
                util::AlignedVector<std::uint32_t> block,
                util::AlignedVector<std::uint8_t> unit,
                util::AlignedVector<std::uint8_t> typeFlags);

    const std::string &name() const { return _name; }
    const PrepareOptions &options() const { return _opts; }

    /** Kept references (instruction + data) after filtering. */
    std::uint64_t totalRefs() const { return _instrRefs + dataRefs(); }
    /** Instruction fetches, reported in bulk to each engine. */
    std::uint64_t instrRefs() const { return _instrRefs; }
    /** Data references — the length of the SoA columns. */
    std::size_t dataRefs() const { return _block.size(); }

    /** Distinct sharing units (dense indices [0, numUnits)). */
    unsigned numUnits() const { return _nUnits; }
    /** Distinct CPUs (dense first-seen indices [0, numCpus)). */
    unsigned numCpus() const { return _nCpus; }

    /** @name Interleaved data-reference columns (global order). */
    /** @{ */
    const std::uint32_t *blockData() const { return _block.data(); }
    const std::uint8_t *unitData() const { return _unit.data(); }
    const std::uint8_t *typeFlagsData() const
    {
        return _typeFlags.data();
    }
    /** @} */

    /** Per-CPU streams were decoded (PrepareOptions::timedStreams). */
    bool hasTimedStreams() const { return !_cpuStreams.empty(); }
    /** Per-CPU streams, indexed by dense first-seen CPU order. */
    const std::vector<PreparedCpuStream> &cpuStreams() const
    {
        return _cpuStreams;
    }

    /** Heap bytes held by the decoded columns (repository budget). */
    std::size_t byteSize() const;

  private:
    friend class PreparedTraceBuilder;
    friend class StoredTrace; //!< Rebuilds a trace from disk columns.
    PreparedTrace() = default;

    std::string _name;
    PrepareOptions _opts;
    std::uint64_t _instrRefs = 0;
    unsigned _nUnits = 0;
    unsigned _nCpus = 0;
    util::AlignedVector<std::uint32_t> _block;
    util::AlignedVector<std::uint8_t> _unit;
    util::AlignedVector<std::uint8_t> _typeFlags;
    std::vector<PreparedCpuStream> _cpuStreams;
};

/**
 * PreparedSpanSource view of an in-memory PreparedTrace.
 *
 * With windowRefs == 0 the whole column set is one span (the shape
 * Simulator::run(const PreparedTrace&) consumes); a non-zero window
 * slices the same columns into consecutive spans of at most that many
 * references.  The windowed form exists so tests can prove span
 * boundaries are invisible to the engines without any file I/O, and
 * so huge in-memory traces can exercise the exact code path the
 * out-of-core store uses.
 */
class PreparedTraceSpans final : public PreparedSpanSource
{
  public:
    /** @param trace Trace to view; must outlive the span source. */
    explicit PreparedTraceSpans(const PreparedTrace &trace,
                                std::size_t windowRefs = 0)
        : _trace(&trace), _window(windowRefs)
    {
    }

    const std::string &name() const override { return _trace->name(); }
    const PrepareOptions &options() const override
    {
        return _trace->options();
    }
    std::uint64_t instrRefs() const override
    {
        return _trace->instrRefs();
    }
    std::uint64_t dataRefs() const override
    {
        return _trace->dataRefs();
    }
    unsigned numUnits() const override { return _trace->numUnits(); }
    unsigned numCpus() const override { return _trace->numCpus(); }

    bool nextSpan(PreparedSpan &span) override;
    void rewind() override { _pos = 0; _done = false; }

  private:
    const PreparedTrace *_trace;
    std::size_t _window;
    std::size_t _pos = 0;
    bool _done = false; //!< Empty traces still yield one empty span.
};

/**
 * Two-phase decoder: a serial planning scan in the constructor
 * (freezes unit numbering, validates widths, computes every chunk's
 * write offsets), then decodeChunk() for each chunk in [0,
 * numChunks()) — concurrently if desired, each chunk writes a
 * disjoint range — then finish() to take the result.
 *
 * @throws std::invalid_argument from the constructor when the trace
 *         does not fit the prepared widths: more than 256 sharing
 *         units or CPUs (8-bit unit column), or a block index
 *         exceeding 32 bits at the chosen block size.
 */
class PreparedTraceBuilder
{
  public:
    PreparedTraceBuilder(const MemoryTrace &trace,
                         const PrepareOptions &opts = {});

    std::size_t numChunks() const { return _chunks.size(); }

    /** Decode chunk @p chunk; distinct chunks may run concurrently. */
    void decodeChunk(std::size_t chunk);

    /** Take the decoded trace; every chunk must have been decoded. */
    PreparedTrace finish();

  private:
    struct ChunkPlan
    {
        std::size_t rawBegin = 0; //!< First raw record of the chunk.
        std::size_t rawEnd = 0;   //!< One past the last raw record.
        std::size_t dataOffset = 0; //!< Write offset into the columns.
        /** Per-CPU write offsets (timedStreams only). */
        std::vector<std::size_t> cpuOffset;
    };

    const MemoryTrace &_trace;
    PreparedTrace _out;
    /** unitKey(rec, domain) -> dense unit index; frozen after plan. */
    std::vector<std::int32_t> _unitOf;
    /** rec.cpu -> dense CPU index; frozen after plan. */
    std::vector<std::int32_t> _cpuOf;
    std::vector<ChunkPlan> _chunks;
    std::atomic<std::size_t> _decoded{0};
    bool _finished = false;
};

} // namespace dirsim::trace

#endif // DIRSIM_TRACE_PREPARED_HH
