/**
 * @file
 * Out-of-core prepared-trace store: a versioned on-disk format for
 * the SoA replay columns, a streaming writer, and a windowed reader.
 *
 * The prepared format (trace/prepared.hh) made decoding a one-time
 * cost but still holds every column in RAM, which caps workloads at
 * memory size.  This store spills the same columns to disk and
 * replays them through the PreparedSpanSource chunk-iterator, so a
 * billion-reference trace replays with O(chunk) resident memory:
 * generate → prepare → spill runs as one serial streaming pass
 * (spillFromSource, no full materialisation at any stage), and replay
 * maps one chunk window at a time (mmap with a pread fallback).
 *
 * On-disk layout, format version 1 (all integers little-endian):
 *
 *   header   magic "DSPTRACE" | u32 version | u32 headerBytes |
 *            u64 configFingerprint | u32 blockBytes | u32 domain |
 *            u8 dropLockTests | u8 timedStreams | u16 reserved |
 *            u32 nUnits | u32 nCpus | u32 nameLen | u64 instrRefs |
 *            u64 dataRefs | u64 chunkRefs | u64 nChunks |
 *            u64 tableOffset | name bytes | u64 headerDigest
 *   chunks   per data chunk of n refs (offset 64-aligned when
 *            written by this build; readers accept any 8-aligned
 *            offset, so older 8-aligned files stay readable):
 *            u32 block[n] | u8 unit[n] | u8 typeFlags[n] | pad to 8
 *            (timed per-CPU stream chunks use the same framing)
 *            The 64-byte chunk alignment keeps mmap'd column windows
 *            on cache-line boundaries so SIMD replay loads take the
 *            aligned path; it is a pure padding change — chunk
 *            offsets are explicit in the table, so no version bump.
 *   table    { u64 offset, u64 nRefs, u64 digest } per data chunk,
 *            then (timedStreams only) u64 cpuRefs[nCpus] followed by
 *            each CPU's chunk entries, then u64 tableDigest; the
 *            table ends exactly at EOF.
 *
 * Integrity: headerDigest covers every header field after the
 * magic/version pair (so a version bump reports as a version
 * mismatch, not corruption), tableDigest covers the table, and each
 * chunk entry carries a digest of its payload bytes, verified as the
 * window is read — a single flipped byte anywhere in the file is
 * detected before any engine consumes the data.  All digests are
 * util::StreamHash64.  Crash safety is the *caller's* job via
 * write-to-temp-then-rename (sim::TraceRepository's disk tier does
 * exactly that); a torn direct write is still detected at open.
 */

#ifndef DIRSIM_TRACE_STORE_HH
#define DIRSIM_TRACE_STORE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/prepared.hh"
#include "trace/ref_source.hh"

namespace dirsim::trace
{

/** Format version written and required by this build. */
constexpr std::uint32_t kStoreFormatVersion = 1;

/** Default references per chunk (~6 MiB of data columns). */
constexpr std::uint64_t kDefaultChunkRefs = 1u << 20;

/** Parameters of one store file being written. */
struct StoreWriteOptions
{
    /** References per chunk; bounds replay RSS.  Must be >= 1. */
    std::uint64_t chunkRefs = kDefaultChunkRefs;
    /**
     * Caller-defined identity of the (workload, prepare) configuration
     * the file was built from; readers that know the expected value
     * can reject a file that belongs to a different configuration
     * (the disk cache keys files by a hash, and this field turns a
     * filename collision into a detected miss).  0 = not recorded.
     */
    std::uint64_t configFingerprint = 0;
};

/**
 * Streaming writer for the stored-trace format.
 *
 * Usage: construct (opens the file and reserves the header region),
 * append references in stream order — appendData() for the
 * interleaved data columns, appendCpu() for the per-CPU timed streams
 * when PrepareOptions::timedStreams is set, addInstrRefs() for bulk
 * instruction counts — then setUnits() and finish().  Chunks flush to
 * disk as they fill, so writer memory is O(chunkRefs) (times nCpus+1
 * when timed streams are on).  The destructor without finish()
 * abandons the file (best-effort unlink): a half-written store is
 * never left looking valid.
 */
class PreparedTraceWriter
{
  public:
    PreparedTraceWriter(const std::string &path, const std::string &name,
                        const PrepareOptions &opts,
                        const StoreWriteOptions &store = {});
    ~PreparedTraceWriter();

    PreparedTraceWriter(const PreparedTraceWriter &) = delete;
    PreparedTraceWriter &operator=(const PreparedTraceWriter &) = delete;

    /** Append one data reference to the interleaved columns. */
    void
    appendData(std::uint32_t block, std::uint8_t unit,
               std::uint8_t typeFlags)
    {
        _data.block.push_back(block);
        _data.unit.push_back(unit);
        _data.typeFlags.push_back(typeFlags);
        ++_dataRefs;
        if (_data.block.size() >= _chunkRefs)
            flushChunk(_data, _dataEntries);
    }

    /**
     * Append @p n data references from parallel column arrays.
     * Equivalent to n appendData() calls: the chunk buffer fills to
     * the same flush boundaries, so the produced file is byte-
     * identical whatever the caller's batching — the direct pipeline
     * hands over generation-sized chunks, writeStored() whole traces.
     */
    void
    appendDataBulk(const std::uint32_t *block, const std::uint8_t *unit,
                   const std::uint8_t *typeFlags, std::size_t n)
    {
        while (n > 0) {
            const std::size_t room = static_cast<std::size_t>(
                _chunkRefs - _data.block.size());
            const std::size_t take = n < room ? n : room;
            _data.block.insert(_data.block.end(), block, block + take);
            _data.unit.insert(_data.unit.end(), unit, unit + take);
            _data.typeFlags.insert(_data.typeFlags.end(), typeFlags,
                                   typeFlags + take);
            _dataRefs += take;
            block += take;
            unit += take;
            typeFlags += take;
            n -= take;
            if (_data.block.size() >= _chunkRefs)
                flushChunk(_data, _dataEntries);
        }
    }

    /** Append one reference to CPU @p cpu's timed stream (timed
     *  stores only; includes instruction fetches). */
    void appendCpu(unsigned cpu, std::uint32_t block, std::uint8_t unit,
                   std::uint8_t typeFlags);

    /** Count @p n instruction fetches (stripped from the data
     *  columns, reported in bulk at replay). */
    void addInstrRefs(std::uint64_t n) { _instrRefs += n; }

    /** Record the dense unit/CPU counts (before finish()). */
    void setUnits(unsigned nUnits, unsigned nCpus);

    /** Flush everything, write the chunk table, patch the header.
     *  The file is complete and readable once this returns. */
    void finish();

    std::uint64_t dataRefs() const { return _dataRefs; }
    std::uint64_t instrRefs() const { return _instrRefs; }

  private:
    struct ChunkBuffer
    {
        std::vector<std::uint32_t> block;
        std::vector<std::uint8_t> unit;
        std::vector<std::uint8_t> typeFlags;
    };

    struct ChunkEntry
    {
        std::uint64_t offset = 0;
        std::uint64_t nRefs = 0;
        std::uint64_t digest = 0;
    };

    void flushChunk(ChunkBuffer &buf, std::vector<ChunkEntry> &entries);
    void writeBytes(const void *data, std::size_t n);
    void padTo8();
    /** Pad to a cache-line boundary (chunk starts). */
    void padTo64();

    std::string _path;
    std::string _name;
    PrepareOptions _opts;
    std::uint64_t _chunkRefs;
    std::uint64_t _configFingerprint;
    int _fd = -1;
    std::uint64_t _pos = 0; //!< Current append offset.
    std::uint64_t _instrRefs = 0;
    std::uint64_t _dataRefs = 0;
    unsigned _nUnits = 0;
    unsigned _nCpus = 0;
    ChunkBuffer _data;
    std::vector<ChunkEntry> _dataEntries;
    std::vector<ChunkBuffer> _cpuBuffers;
    std::vector<std::uint64_t> _cpuRefs;
    std::vector<std::vector<ChunkEntry>> _cpuEntries;
    bool _finished = false;
};

/** How StoredTrace serves chunk windows. */
enum class StoreReadMode
{
    Auto,  //!< mmap, falling back to pread if mapping fails.
    Mmap,  //!< Windowed mmap only (open fails if unsupported).
    Pread, //!< Buffered pread with readahead hints only.
};

/** Reader options. */
struct StoredTraceOptions
{
    StoreReadMode mode = StoreReadMode::Auto;
    /** Check every chunk's digest as its window is read.  Costs one
     *  extra pass over each chunk; on by default because a silent
     *  bit-flip would otherwise replay as a different workload. */
    bool verifyDigests = true;
};

/**
 * A validated stored trace: shared immutable metadata plus cursor
 * factories.  Open with open(); the header and chunk table are fully
 * validated there (magic, version, digests, geometry bounds), so a
 * torn or corrupted file fails fast.  Chunk payload digests are
 * verified lazily as cursors read them.
 *
 * Thread safety: the StoredTrace itself is immutable after open();
 * each cursor owns its window state, so any number of cursors may
 * stream concurrently (pread and per-cursor mmap are independent).
 */
class StoredTrace : public std::enable_shared_from_this<StoredTrace>
{
  public:
    /**
     * Open and validate @p path.
     * @throws std::runtime_error on I/O error, bad magic, digest
     *         mismatch or malformed geometry; the message says which.
     *         A version other than kStoreFormatVersion reports a
     *         distinct "format version" error.
     */
    static std::shared_ptr<const StoredTrace>
    open(const std::string &path, const StoredTraceOptions &opts = {});

    ~StoredTrace();
    StoredTrace(const StoredTrace &) = delete;
    StoredTrace &operator=(const StoredTrace &) = delete;

    const std::string &name() const { return _name; }
    const PrepareOptions &options() const { return _opts; }
    std::uint64_t instrRefs() const { return _instrRefs; }
    std::uint64_t dataRefs() const { return _dataRefs; }
    std::uint64_t totalRefs() const { return _instrRefs + _dataRefs; }
    unsigned numUnits() const { return _nUnits; }
    unsigned numCpus() const { return _nCpus; }
    bool hasTimedStreams() const { return _opts.timedStreams; }
    std::uint64_t chunkRefs() const { return _chunkRefs; }
    std::size_t numChunks() const { return _dataChunks.size(); }
    std::uint64_t configFingerprint() const
    {
        return _configFingerprint;
    }
    /** Total file size in bytes (disk-cache budget accounting). */
    std::uint64_t fileBytes() const { return _fileBytes; }
    const std::string &path() const { return _path; }

    /**
     * A fresh span cursor over the interleaved data columns, holding
     * a reference on this trace.  Peak resident memory is one chunk
     * window regardless of trace length.
     */
    std::unique_ptr<PreparedSpanSource> spanCursor() const;

    /**
     * A fresh cursor over CPU @p cpu's timed stream (timed stores
     * only; std::logic_error otherwise).
     */
    std::unique_ptr<CpuRefCursor> cpuCursor(unsigned cpu) const;

    /**
     * Materialise the whole trace back into memory (the disk-cache
     * warm-hit path: reading columns back is a sequential copy, not a
     * re-generate + re-decode).  Digest-verified chunk by chunk.
     */
    PreparedTrace loadAll() const;

  private:
    friend class StoredSpanCursor;
    friend class StoredCpuCursor;

    struct ChunkRef
    {
        std::uint64_t offset = 0;
        std::uint64_t nRefs = 0;
        std::uint64_t digest = 0;
    };

    StoredTrace() = default;

    std::string _path;
    std::string _name;
    PrepareOptions _opts;
    StoredTraceOptions _readOpts;
    std::uint64_t _configFingerprint = 0;
    std::uint64_t _instrRefs = 0;
    std::uint64_t _dataRefs = 0;
    unsigned _nUnits = 0;
    unsigned _nCpus = 0;
    std::uint64_t _chunkRefs = 0;
    std::uint64_t _fileBytes = 0;
    int _fd = -1;
    bool _mmapOk = false; //!< Probed at open for Auto mode.
    std::vector<ChunkRef> _dataChunks;
    /** cpuChunks[cpu] = that CPU's stream chunks (timed only). */
    std::vector<std::vector<ChunkRef>> _cpuChunks;
    std::vector<std::uint64_t> _cpuRefCounts;
};

/** Outcome summary of a spill. */
struct StoredTraceInfo
{
    std::uint64_t instrRefs = 0;
    std::uint64_t dataRefs = 0;
    unsigned nUnits = 0;
    unsigned nCpus = 0;
    std::uint64_t fileBytes = 0;
};

/**
 * The O(chunk) build pipeline: stream @p source once, decode each
 * record with the same first-seen dense numbering, block mapping and
 * lock-test filter as PreparedTraceBuilder (bit-identical columns by
 * construction — the builder's planning scan visits records in this
 * exact order), and spill chunks to @p path as they fill.  Nothing is
 * ever fully materialised: peak memory is one chunk buffer (plus one
 * per CPU when opts.timedStreams).
 *
 * @throws std::invalid_argument when the stream does not fit the
 *         prepared widths (same limits as PreparedTraceBuilder);
 *         std::runtime_error on I/O failure.  Either way the partial
 *         file is removed.
 */
StoredTraceInfo
spillFromSource(RefSource &source, const std::string &name,
                const PrepareOptions &opts, const std::string &path,
                const StoreWriteOptions &store = {});

/** Spill an already-decoded trace (the disk tier's path when the
 *  in-memory build happened first). */
StoredTraceInfo
writeStored(const PreparedTrace &trace, const std::string &path,
            const StoreWriteOptions &store = {});

} // namespace dirsim::trace

#endif // DIRSIM_TRACE_STORE_HH
