/**
 * @file
 * Abstract source of trace records.
 *
 * The simulator, trace writers and characterisers all consume a
 * RefSource, so synthetic workloads can be simulated directly without
 * ever materialising a multi-million-record trace, while recorded
 * traces stream from disk through the same interface.
 */

#ifndef DIRSIM_TRACE_REF_SOURCE_HH
#define DIRSIM_TRACE_REF_SOURCE_HH

#include <cstddef>

#include "trace/record.hh"

namespace dirsim::trace
{

/** A forward-only stream of TraceRecords. */
class RefSource
{
  public:
    virtual ~RefSource() = default;

    /**
     * Produce the next record.
     *
     * @param record Output; untouched when the stream is exhausted.
     * @retval true A record was produced.
     * @retval false End of stream.
     */
    virtual bool next(TraceRecord &record) = 0;

    /**
     * Produce up to @p max records into @p out.
     *
     * The default implementation loops next(); materialised sources
     * override it to copy contiguous runs, so batch consumers (the
     * simulation drivers) pay one virtual call per batch instead of
     * one per record.
     *
     * @return Number of records produced; 0 means end of stream.
     */
    virtual std::size_t
    nextBatch(TraceRecord *out, std::size_t max)
    {
        std::size_t n = 0;
        while (n < max && next(out[n]))
            ++n;
        return n;
    }

    /** Rewind to the beginning so the stream can be replayed. */
    virtual void rewind() = 0;
};

} // namespace dirsim::trace

#endif // DIRSIM_TRACE_REF_SOURCE_HH
