#include "timing/sweep.hh"

#include <stdexcept>

#include "sim/sweep.hh"

namespace dirsim::timing
{

std::vector<TimedRun>
runTimedSweep(const std::vector<TimedSweepPoint> &points, unsigned jobs)
{
    std::vector<std::function<TimedRun()>> tasks;
    tasks.reserve(points.size());
    for (const TimedSweepPoint &point : points) {
        if (!point.engine || (!point.source && !point.prepared))
            throw std::invalid_argument(
                "runTimedSweep: point '" + point.name +
                "' needs an engine factory and a source factory or "
                "prepared trace");
        tasks.push_back([&point] {
            TimedBusSim sim(point.config, point.engine());
            TimedRun run;
            if (point.prepared) {
                run = sim.run(*point.prepared);
            } else {
                const auto source = point.source();
                run = sim.run(*source);
            }
            run.name = point.name;
            return run;
        });
    }
    return sim::runOrdered<TimedRun>(
        sim::ThreadPool::resolveThreads(jobs), tasks);
}

} // namespace dirsim::timing
