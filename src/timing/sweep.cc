#include "timing/sweep.hh"

#include <stdexcept>

#include "sim/sweep.hh"

namespace dirsim::timing
{

std::vector<TimedRun>
runTimedSweep(const std::vector<TimedSweepPoint> &points, unsigned jobs)
{
    std::vector<std::function<TimedRun()>> tasks;
    tasks.reserve(points.size());
    for (const TimedSweepPoint &point : points) {
        if (!point.engine || !point.source)
            throw std::invalid_argument(
                "runTimedSweep: point '" + point.name +
                "' needs engine and source factories");
        tasks.push_back([&point] {
            TimedBusSim sim(point.config, point.engine());
            const auto source = point.source();
            TimedRun run = sim.run(*source);
            run.name = point.name;
            return run;
        });
    }
    return sim::runOrdered<TimedRun>(
        sim::ThreadPool::resolveThreads(jobs), tasks);
}

} // namespace dirsim::timing
