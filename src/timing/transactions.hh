/**
 * @file
 * Per-reference bus transactions for the timed model.
 *
 * The static cost model (sim/cost_model.hh) charges *aggregate* event
 * frequencies; a timed bus needs the charge of *each* reference at the
 * moment it executes.  TransactionModel recovers it by diffing the
 * engine's EngineResults across one access() call: exactly one event
 * is recorded per reference, and the handful of auxiliary counters the
 * cost model reads (fanout-histogram weights, displacement
 * invalidations, 1→2 holder growth, replacement write-backs) each
 * change by a knowable delta.  The per-scheme switch then mirrors
 * sim::computeCost term for term, so summing RefCharges over a run
 * reproduces the aggregate model *exactly* — in integer cycles, which
 * is what staticBusCycles() computes independently and what the
 * zero-contention equivalence test holds both sides to.
 *
 * Transaction granularity matches the cost model's transactionsPerRef
 * accounting: one bus tenure per counted transaction (a dirty-miss
 * service is one tenure covering request + invalidate + write-back; a
 * WTI write miss is two tenures, the fill and the write-through).
 * Charges with no statically-counted transaction (displacement
 * invalidates on first-reference fills, replacement write-backs) ride
 * as overhead-exempt tenures so cycle totals still match.
 */

#ifndef DIRSIM_TIMING_TRANSACTIONS_HH
#define DIRSIM_TIMING_TRANSACTIONS_HH

#include <array>
#include <cstdint>

#include "bus/bus_model.hh"
#include "coherence/results.hh"
#include "sim/cost_model.hh"

namespace dirsim::timing
{

/** One bus tenure a reference needs. */
struct TxnCharge
{
    /** Bus occupancy in cycles, including any per-transaction
     *  overhead q (CostOptions::overheadQ). */
    std::uint32_t busCycles = 0;
    /** Carries a main-memory block read (pipelined buses add the
     *  off-bus memory wait to the requester's latency). */
    bool usesMemory = false;
    /** Counted by the static model's transactionsPerRef (and hence
     *  charged overhead q). */
    bool counted = true;
};

/** Everything one reference asks of the bus (possibly nothing). */
struct RefCharge
{
    std::array<TxnCharge, 3> txns;
    unsigned count = 0;

    void
    add(std::uint32_t cycles, bool usesMemory, bool counted)
    {
        txns[count++] = TxnCharge{cycles, usesMemory, counted};
    }

    bool empty() const { return count == 0; }
};

/**
 * Stateful per-reference charger for one (scheme, bus) pair.
 *
 * Drive it in lock-step with the engine: after every
 * engine->access(), call charge(engine->results()) to get that
 * reference's bus transactions.  The model snapshots the counters it
 * needs, so the engine must not be shared with another charger.
 *
 * The constructor validates that CostOptions::broadcastCost and
 * ::overheadQ are non-negative integers — the timed model deals in
 * whole cycles — and throws std::invalid_argument otherwise.
 */
class TransactionModel
{
  public:
    TransactionModel(sim::Scheme scheme, const bus::BusCosts &bus,
                     const sim::CostOptions &opts = sim::CostOptions{});

    /** Diff @p results against the snapshot and emit this
     *  reference's transactions.  Instruction fetches, hits and
     *  first-reference misses come back empty (for most schemes). */
    RefCharge charge(const coherence::EngineResults &results);

    /** Forget the snapshot (call alongside engine->reset()). */
    void reset();

    sim::Scheme scheme() const { return _scheme; }

  private:
    struct Snapshot
    {
        std::array<std::uint64_t, coherence::numEvents> events{};
        std::uint64_t totalRefs = 0;
        std::uint64_t whSamples = 0;
        std::uint64_t whWeight = 0;
        std::uint64_t wmSamples = 0;
        std::uint64_t wmWeight = 0;
        std::uint64_t holderGrowth12 = 0;
        std::uint64_t displacementInvals = 0;
        std::uint64_t replacementWriteBacks = 0;
        std::uint64_t dirCacheEvictionInvals = 0;
        std::uint64_t dirCacheEvictionWriteBacks = 0;
    };

    sim::Scheme _scheme;
    bus::BusCosts _bus;
    unsigned _nPointers;
    std::uint32_t _broadcastCycles;
    std::uint32_t _overheadQ;
    Snapshot _prev;
};

/**
 * Total bus cycles of a whole run, in exact integer arithmetic — the
 * same accounting as sim::computeCost (including replacement
 * write-backs and overhead q) without the divide-by-refs that makes
 * the double version inexact.  The timed simulator's busBusyCycles
 * equals this for any run of the matching engine; dividing by
 * totalRefs() recovers computeCost().total() to floating-point
 * precision.  Throws std::invalid_argument on non-integer
 * broadcastCost/overheadQ.
 */
std::uint64_t
staticBusCycles(sim::Scheme scheme,
                const coherence::EngineResults &results,
                const bus::BusCosts &bus,
                const sim::CostOptions &opts = sim::CostOptions{});

} // namespace dirsim::timing

#endif // DIRSIM_TIMING_TRANSACTIONS_HH
