#include "timing/transactions.hh"

#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dirsim::timing
{

using coherence::EngineResults;
using coherence::Event;

namespace
{

/** Validate a CostOptions double as a whole, representable cycle
 *  count (the timed model deals in integer cycles). */
std::uint32_t
toCycles(double value, const char *what)
{
    if (!(value >= 0.0) || value != std::floor(value) ||
        value > static_cast<double>(
                    std::numeric_limits<std::uint32_t>::max())) {
        throw std::invalid_argument(
            std::string("timed bus: ") + what +
            " must be a non-negative whole number of cycles");
    }
    return static_cast<std::uint32_t>(value);
}

/** Integer version of the cost model's pointerInvalCycles: directed
 *  while the copy count fits the pointers, broadcast beyond. */
std::uint64_t
pointerInvalCycles(const stats::Histogram &hist, unsigned limit,
                   std::uint64_t directed, std::uint64_t broadcast)
{
    std::uint64_t cycles = 0;
    for (std::size_t k = 0; k <= hist.maxValue(); ++k) {
        const std::uint64_t n = hist.count(k);
        if (n == 0)
            continue;
        cycles += k <= limit ? n * k * directed : n * broadcast;
    }
    return cycles;
}

} // namespace

TransactionModel::TransactionModel(sim::Scheme scheme,
                                   const bus::BusCosts &bus,
                                   const sim::CostOptions &opts)
    : _scheme(scheme), _bus(bus),
      _nPointers(scheme == sim::Scheme::Dir1NB ? 1 : opts.nPointers),
      _broadcastCycles(toCycles(opts.broadcastCost, "broadcastCost")),
      _overheadQ(toCycles(opts.overheadQ, "overheadQ"))
{
}

void
TransactionModel::reset()
{
    _prev = Snapshot{};
}

RefCharge
TransactionModel::charge(const EngineResults &r)
{
    assert(r.events.totalRefs() == _prev.totalRefs + 1 &&
           "charge() must follow exactly one engine access()");

    // Exactly one event is recorded per reference; find it.
    Event event = Event::NumEvents;
    for (std::size_t i = 0; i < coherence::numEvents; ++i) {
        const auto e = static_cast<Event>(i);
        if (r.events.count(e) != _prev.events[i]) {
            event = e;
            break;
        }
    }
    assert(event != Event::NumEvents);

    // Deltas of the auxiliary counters the cost model reads.
    const std::uint64_t dWhW =
        r.whClnFanout.totalWeight() - _prev.whWeight;
    const std::uint64_t dWmW =
        r.wmClnFanout.totalWeight() - _prev.wmWeight;
    const std::uint64_t dH12 = r.holderGrowth12 - _prev.holderGrowth12;
    const std::uint64_t dDispl =
        r.displacementInvals - _prev.displacementInvals;
    const std::uint64_t dReplWB =
        r.replacementWriteBacks - _prev.replacementWriteBacks;
    const std::uint64_t dDcInv =
        r.dirCacheEvictionInvals - _prev.dirCacheEvictionInvals;
    const std::uint64_t dDcWB = r.dirCacheEvictionWriteBacks -
                                _prev.dirCacheEvictionWriteBacks;

    ++_prev.totalRefs;
    ++_prev.events[static_cast<std::size_t>(event)];
    _prev.whSamples = r.whClnFanout.totalSamples();
    _prev.whWeight = r.whClnFanout.totalWeight();
    _prev.wmSamples = r.wmClnFanout.totalSamples();
    _prev.wmWeight = r.wmClnFanout.totalWeight();
    _prev.holderGrowth12 = r.holderGrowth12;
    _prev.displacementInvals = r.displacementInvals;
    _prev.replacementWriteBacks = r.replacementWriteBacks;
    _prev.dirCacheEvictionInvals = r.dirCacheEvictionInvals;
    _prev.dirCacheEvictionWriteBacks = r.dirCacheEvictionWriteBacks;

    const std::uint64_t mem = _bus.memoryAccess;
    const std::uint64_t cache = _bus.cacheAccess;
    const std::uint64_t wb = _bus.writeBack;
    const std::uint64_t ww = _bus.writeWord;
    const std::uint64_t dc = _bus.directoryCheck;
    const std::uint64_t inv = _bus.invalidate;
    const std::uint64_t req = _bus.requestAddress;

    RefCharge out;
    // Emit one tenure; counted tenures carry the overhead q the
    // static model charges per transaction.  Zero-cycle tenures are
    // dropped (they occupy nothing and cost nothing).
    const auto emit = [&](std::uint64_t cycles, bool usesMemory,
                          bool counted) {
        if (counted)
            cycles += _overheadQ;
        if (cycles == 0)
            return;
        out.add(static_cast<std::uint32_t>(cycles), usesMemory,
                counted);
    };
    // DiriB invalidation: directed while the copies fit the pointers,
    // broadcast beyond.
    const auto pointerInv = [&](std::uint64_t fanout) {
        return fanout <= _nPointers ? fanout * inv : _broadcastCycles;
    };

    switch (_scheme) {
      case sim::Scheme::Dir1NB:
      case sim::Scheme::DirINB:
        switch (event) {
          case Event::RmBlkCln:
          case Event::RmMemory:
            emit(mem, true, true);
            break;
          case Event::WmBlkCln:
            emit(mem + dWmW * inv, true, true);
            break;
          case Event::WmMemory:
            emit(mem, true, true);
            break;
          case Event::RmBlkDrty:
          case Event::WmBlkDrty:
            emit(req + wb + inv, false, true);
            break;
          case Event::WhBlkClnExcl:
          case Event::WhBlkClnShared:
            // A single pointer makes cached blocks exclusive by
            // construction, so write hits are free for i = 1.
            if (_nPointers >= 2)
                emit(dc + dWhW * inv, false, true);
            break;
          default:
            break;
        }
        // Pointer displacements on fills are charged but are not bus
        // transactions of their own in the static accounting; fold
        // them into this reference's tenure when it has one.
        if (dDispl != 0) {
            if (out.count != 0)
                out.txns[out.count - 1].busCycles +=
                    static_cast<std::uint32_t>(dDispl * inv);
            else
                emit(dDispl * inv, false, false);
        }
        break;

      case sim::Scheme::Dir0B:
        switch (event) {
          case Event::RmBlkCln:
          case Event::RmMemory:
          case Event::WmMemory:
            emit(mem, true, true);
            break;
          case Event::WmBlkCln:
            emit(mem + inv, true, true);
            break;
          case Event::RmBlkDrty:
            emit(req + wb, false, true);
            break;
          case Event::WmBlkDrty:
            emit(req + wb + inv, false, true);
            break;
          case Event::WhBlkClnExcl:
            // "Clean in exactly one cache" suppresses the broadcast.
            emit(dc, false, true);
            break;
          case Event::WhBlkClnShared:
            emit(dc + inv, false, true);
            break;
          default:
            break;
        }
        break;

      case sim::Scheme::DirNNBSeq:
        switch (event) {
          case Event::RmBlkCln:
          case Event::RmMemory:
          case Event::WmMemory:
            emit(mem, true, true);
            break;
          case Event::WmBlkCln:
            // One directed message per actual copy.
            emit(mem + dWmW * inv, true, true);
            break;
          case Event::RmBlkDrty:
            emit(req + wb, false, true);
            break;
          case Event::WmBlkDrty:
            emit(req + wb + inv, false, true);
            break;
          case Event::WhBlkClnExcl:
          case Event::WhBlkClnShared:
            emit(dc + dWhW * inv, false, true);
            break;
          default:
            break;
        }
        break;

      case sim::Scheme::DirIB:
        switch (event) {
          case Event::RmBlkCln:
          case Event::RmMemory:
          case Event::WmMemory:
            emit(mem, true, true);
            break;
          case Event::WmBlkCln:
            emit(mem + pointerInv(dWmW), true, true);
            break;
          case Event::RmBlkDrty:
            emit(req + wb, false, true);
            break;
          case Event::WmBlkDrty:
            emit(req + wb + inv, false, true);
            break;
          case Event::WhBlkClnExcl:
          case Event::WhBlkClnShared:
            emit(dc + pointerInv(dWhW), false, true);
            break;
          default:
            break;
        }
        break;

      case sim::Scheme::WTI:
        switch (event) {
          case Event::RmBlkCln:
          case Event::RmBlkDrty:
          case Event::RmMemory:
            emit(mem, true, true);
            break;
          case Event::WmBlkCln:
          case Event::WmBlkDrty:
          case Event::WmMemory:
            // The miss fill and the write-through are two tenures.
            emit(mem, true, true);
            emit(ww, false, true);
            break;
          case Event::WhBlkDrty:
          case Event::WhBlkClnExcl:
          case Event::WhBlkClnShared:
          case Event::WmFirstRef:
            // Every write goes through; snooping invalidates free.
            emit(ww, false, true);
            break;
          default:
            break;
        }
        break;

      case sim::Scheme::Dragon:
        switch (event) {
          case Event::RmBlkCln:
          case Event::RmMemory:
          case Event::WmMemory:
            emit(mem, true, true);
            break;
          case Event::RmBlkDrty:
            emit(cache, false, true);
            break;
          case Event::WmBlkCln:
            emit(mem + ww, true, true);
            break;
          case Event::WmBlkDrty:
            emit(cache + ww, false, true);
            break;
          case Event::WhDistrib:
            emit(ww, false, true);
            break;
          default:
            break;
        }
        break;

      case sim::Scheme::Berkeley:
        switch (event) {
          case Event::RmBlkCln:
          case Event::RmMemory:
          case Event::WmMemory:
            emit(mem, true, true);
            break;
          case Event::WmBlkCln:
            emit(mem + inv, true, true);
            break;
          case Event::RmBlkDrty:
            emit(req + wb, false, true);
            break;
          case Event::WmBlkDrty:
            emit(req + wb + inv, false, true);
            break;
          case Event::WhBlkClnShared:
            // The cache's own state replaces the directory probe.
            emit(inv, false, true);
            break;
          default:
            break;
        }
        break;

      case sim::Scheme::YenFu:
        switch (event) {
          case Event::RmBlkCln:
          case Event::RmMemory:
          case Event::WmMemory:
            emit(mem, true, true);
            break;
          case Event::WmBlkCln:
            emit(mem + inv, true, true);
            break;
          case Event::RmBlkDrty:
            emit(req + wb, false, true);
            break;
          case Event::WmBlkDrty:
            emit(req + wb + inv, false, true);
            break;
          case Event::WhBlkClnShared:
            emit(dc + inv, false, true);
            break;
          default:
            // The single bit answers the exclusive-clean check
            // locally: WhBlkClnExcl costs nothing.
            break;
        }
        // ...but keeping single bits current costs one bus word per
        // 1 -> 2 holder transition (its own counted transaction).
        if (dH12 != 0)
            emit(dH12 * ww, false, true);
        break;

      case sim::Scheme::BerkeleyOwn:
        switch (event) {
          case Event::RmBlkCln:
          case Event::RmMemory:
          case Event::WmMemory:
            emit(mem, true, true);
            break;
          case Event::WmBlkCln:
            emit(mem + inv, true, true);
            break;
          case Event::RmBlkDrty:
            // The owning cache supplies; no memory write-back.
            emit(cache, false, true);
            break;
          case Event::WmBlkDrty:
            emit(cache + inv, false, true);
            break;
          case Event::WhBlkClnExcl:
          case Event::WhBlkClnShared:
            // No exclusivity knowledge: every clean write hit
            // broadcasts one invalidate.
            emit(inv, false, true);
            break;
          default:
            break;
        }
        break;

      case sim::Scheme::MESI:
        switch (event) {
          case Event::RmMemory:
          case Event::WmMemory:
            emit(mem, true, true);
            break;
          case Event::RmBlkCln:
            emit(cache, false, true);
            break;
          case Event::WmBlkCln:
            emit(cache + inv, false, true);
            break;
          case Event::RmBlkDrty:
            emit(req + wb, false, true);
            break;
          case Event::WmBlkDrty:
            emit(req + wb + inv, false, true);
            break;
          case Event::WhBlkClnShared:
            emit(inv, false, true);
            break;
          default:
            // Exclusive-clean write hits are silent.
            break;
        }
        break;
    }

    // Finite-cache replacement write-backs and directory-cache
    // eviction traffic use the bus but are not transactions of their
    // own in the static accounting.
    const std::uint64_t extra =
        dReplWB * wb + dDcInv * inv + dDcWB * wb;
    if (extra != 0) {
        if (out.count != 0)
            out.txns[out.count - 1].busCycles +=
                static_cast<std::uint32_t>(extra);
        else
            emit(extra, false, false);
    }

    return out;
}

std::uint64_t
staticBusCycles(sim::Scheme scheme, const EngineResults &results,
                const bus::BusCosts &bus, const sim::CostOptions &opts)
{
    const std::uint64_t bcast =
        toCycles(opts.broadcastCost, "broadcastCost");
    const std::uint64_t q = toCycles(opts.overheadQ, "overheadQ");
    const unsigned nPtrs =
        scheme == sim::Scheme::Dir1NB ? 1 : opts.nPointers;

    const auto c = [&](Event e) { return results.events.count(e); };
    const std::uint64_t rm =
        c(Event::RmBlkCln) + c(Event::RmBlkDrty) + c(Event::RmMemory);
    const std::uint64_t wm =
        c(Event::WmBlkCln) + c(Event::WmBlkDrty) + c(Event::WmMemory);
    const std::uint64_t mm = c(Event::RmBlkCln) + c(Event::RmMemory) +
                             c(Event::WmBlkCln) + c(Event::WmMemory);
    const std::uint64_t md =
        c(Event::RmBlkDrty) + c(Event::WmBlkDrty);
    const std::uint64_t whCln =
        c(Event::WhBlkClnExcl) + c(Event::WhBlkClnShared);
    const std::uint64_t whW = results.whClnFanout.totalWeight();
    const std::uint64_t wmW = results.wmClnFanout.totalWeight();

    const std::uint64_t mem = bus.memoryAccess;
    const std::uint64_t cache = bus.cacheAccess;
    const std::uint64_t wb = bus.writeBack;
    const std::uint64_t ww = bus.writeWord;
    const std::uint64_t dc = bus.directoryCheck;
    const std::uint64_t inv = bus.invalidate;
    const std::uint64_t req = bus.requestAddress;

    std::uint64_t cycles = 0;
    std::uint64_t txns = 0;

    switch (scheme) {
      case sim::Scheme::Dir1NB:
      case sim::Scheme::DirINB:
        cycles = mm * mem + md * (req + wb + inv) +
                 (wmW + whW + results.displacementInvals) * inv;
        txns = rm + wm;
        if (nPtrs >= 2) {
            cycles += whCln * dc;
            txns += whCln;
        }
        break;
      case sim::Scheme::Dir0B:
        cycles = mm * mem + md * (req + wb) +
                 (c(Event::WmBlkCln) + c(Event::WmBlkDrty) +
                  c(Event::WhBlkClnShared)) *
                     inv +
                 whCln * dc;
        txns = rm + wm + whCln;
        break;
      case sim::Scheme::DirNNBSeq:
        cycles = mm * mem + md * (req + wb) +
                 (whW + wmW + c(Event::WmBlkDrty)) * inv + whCln * dc;
        txns = rm + wm + whCln;
        break;
      case sim::Scheme::DirIB:
        cycles = mm * mem + md * (req + wb) +
                 pointerInvalCycles(results.whClnFanout, nPtrs, inv,
                                    bcast) +
                 pointerInvalCycles(results.wmClnFanout, nPtrs, inv,
                                    bcast) +
                 c(Event::WmBlkDrty) * inv + whCln * dc;
        txns = rm + wm + whCln;
        break;
      case sim::Scheme::WTI:
        cycles = (rm + wm) * mem + results.events.writes() * ww;
        txns = rm + wm + results.events.writes();
        break;
      case sim::Scheme::Dragon:
        cycles = mm * mem + md * cache +
                 (c(Event::WhDistrib) + c(Event::WmBlkCln) +
                  c(Event::WmBlkDrty)) *
                     ww;
        txns = rm + wm + c(Event::WhDistrib);
        break;
      case sim::Scheme::Berkeley:
        cycles = mm * mem + md * (req + wb) +
                 (c(Event::WmBlkCln) + c(Event::WmBlkDrty) +
                  c(Event::WhBlkClnShared)) *
                     inv;
        txns = rm + wm + c(Event::WhBlkClnShared);
        break;
      case sim::Scheme::YenFu:
        cycles = mm * mem + md * (req + wb) +
                 (c(Event::WmBlkCln) + c(Event::WmBlkDrty) +
                  c(Event::WhBlkClnShared)) *
                     inv +
                 c(Event::WhBlkClnShared) * dc +
                 results.holderGrowth12 * ww;
        txns = rm + wm + c(Event::WhBlkClnShared) +
               results.holderGrowth12;
        break;
      case sim::Scheme::BerkeleyOwn:
        cycles = mm * mem + md * cache +
                 (whCln + c(Event::WmBlkCln) + c(Event::WmBlkDrty)) *
                     inv;
        txns = rm + wm + whCln;
        break;
      case sim::Scheme::MESI:
        cycles = (c(Event::RmMemory) + c(Event::WmMemory)) * mem +
                 (c(Event::RmBlkCln) + c(Event::WmBlkCln)) * cache +
                 md * (req + wb) +
                 (c(Event::WhBlkClnShared) + c(Event::WmBlkCln) +
                  c(Event::WmBlkDrty)) *
                     inv;
        txns = rm + wm + c(Event::WhBlkClnShared);
        break;
    }

    return cycles + results.replacementWriteBacks * wb +
           results.dirCacheEvictionInvals * inv +
           results.dirCacheEvictionWriteBacks * wb + txns * q;
}

} // namespace dirsim::timing
