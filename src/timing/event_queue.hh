/**
 * @file
 * Discrete-event queue and clock for the timed bus simulator.
 *
 * The static cost models of sim/cost_model.hh never advance time; the
 * timed subsystem does, and everything rides on one invariant: events
 * are delivered in a *deterministic total order*.  Two runs of the
 * same configuration — serial or fanned out across sweep workers —
 * must replay the identical event sequence, so the ordering key is
 * (time, kind, cpu, sequence) with no dependence on heap insertion
 * history or pointer values.
 *
 * Bus completions sort before CPU-ready events at the same cycle so a
 * transaction that frees the bus and the requests that arrive on that
 * same cycle all reach the arbiter within one grant phase.
 */

#ifndef DIRSIM_TIMING_EVENT_QUEUE_HH
#define DIRSIM_TIMING_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

namespace dirsim::timing
{

/** What a scheduled event wakes up. */
enum class EventKind : std::uint8_t
{
    BusComplete = 0, //!< The transaction on the bus finished.
    CpuReady = 1,    //!< A CPU is ready to issue its next action.
};

/** One scheduled wake-up. */
struct Event
{
    std::uint64_t time = 0;
    EventKind kind = EventKind::CpuReady;
    unsigned cpu = 0;       //!< Port index the event belongs to.
    std::uint64_t seq = 0;  //!< Schedule order; final tie-breaker.
};

/**
 * Min-priority queue of Events with the deterministic ordering
 * described in the file header.  A plain binary heap over a vector;
 * the sequence number is assigned by push() so identical (time, kind,
 * cpu) keys still pop in schedule order.
 */
class EventQueue
{
  public:
    /** Schedule @p kind for @p cpu at absolute cycle @p time. */
    void push(std::uint64_t time, EventKind kind, unsigned cpu);

    /** Remove and return the front event; queue must not be empty. */
    Event pop();

    /** Time of the front event; queue must not be empty. */
    std::uint64_t nextTime() const;

    bool empty() const { return _heap.empty(); }
    std::size_t size() const { return _heap.size(); }

  private:
    static bool before(const Event &a, const Event &b);

    std::vector<Event> _heap;
    std::uint64_t _nextSeq = 0;
};

} // namespace dirsim::timing

#endif // DIRSIM_TIMING_EVENT_QUEUE_HH
