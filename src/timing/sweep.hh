/**
 * @file
 * Parallel sweep of timed bus runs.
 *
 * A TimedSweepPoint is the timed analogue of sim::SweepPoint: a
 * (scheme, bus, discipline) configuration plus factories for the
 * engine and reference stream it replays.  Points are independent —
 * each job builds, runs and destroys its own TimedBusSim — so they
 * fan out over sim::runOrdered and come back in submission order,
 * bit-identical whatever the worker count (tests/timing_test.cc holds
 * runTimedSweep to exactly that).
 */

#ifndef DIRSIM_TIMING_SWEEP_HH
#define DIRSIM_TIMING_SWEEP_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "coherence/engine.hh"
#include "timing/timed_bus.hh"
#include "trace/ref_source.hh"

namespace dirsim::timing
{

/** One independent timed run in a sweep. */
struct TimedSweepPoint
{
    std::string name;    //!< Label carried into TimedRun::name.
    TimedBusConfig config;

    /**
     * Builds the engine this point runs (must match the scheme, as
     * with sim::computeCost).  Invoked on the worker thread; the
     * engine is owned by the job, so the factory must not hand out an
     * engine shared with other points.
     */
    std::function<std::unique_ptr<coherence::CoherenceEngine>()> engine;

    /**
     * Builds the reference stream.  Invoked on the worker thread;
     * same sharing rules as sim::SweepPoint::source.  Leave unset
     * when @ref prepared supplies the stream.
     */
    std::function<std::unique_ptr<trace::RefSource>()> source;

    /**
     * Already-decoded stream (with timed per-CPU columns) to replay
     * instead of @ref source — bit-identical results, no demux.
     * When both are set, the prepared trace wins.
     */
    std::shared_ptr<const trace::PreparedTrace> prepared;
};

/**
 * Run every point to completion across @p jobs worker threads
 * (0 = one per hardware thread).
 *
 * @return One TimedRun per point, in submission order.
 * @throws std::invalid_argument if a point lacks a factory; whatever
 *         a failing point threw otherwise (earliest-submitted
 *         failure, after all points have completed).
 */
std::vector<TimedRun> runTimedSweep(
    const std::vector<TimedSweepPoint> &points, unsigned jobs = 0);

} // namespace dirsim::timing

#endif // DIRSIM_TIMING_SWEEP_HH
