#include "timing/timed_bus.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "sim/unit_map.hh"
#include "timing/event_queue.hh"
#include "timing/transactions.hh"
#include "trace/store.hh"

namespace dirsim::timing
{

TimedBusModel
timedPipelinedBus(const bus::BusPrimitives &prim)
{
    // Separate address/data paths release the bus during the memory
    // access; the requester still waits for the data.
    return TimedBusModel{bus::pipelinedBus(prim), prim.waitMemory};
}

TimedBusModel
timedNonPipelinedBus(const bus::BusPrimitives &prim)
{
    // The multiplexed bus is held during the access, so the wait is
    // already part of the occupancy.
    return TimedBusModel{bus::nonPipelinedBus(prim), 0};
}

double
TimedRun::busUtilization() const
{
    return makespan == 0 ? 0.0
                         : static_cast<double>(busBusyCycles) /
                               static_cast<double>(makespan);
}

double
TimedRun::busCyclesPerRef() const
{
    return refs == 0 ? 0.0
                     : static_cast<double>(busBusyCycles) /
                           static_cast<double>(refs);
}

double
TimedRun::effectiveCyclesPerRef() const
{
    if (refs == 0)
        return 0.0;
    std::uint64_t active = 0;
    for (const CpuTimedStats &cpu : cpus)
        active += cpu.finishCycle;
    return static_cast<double>(active) / static_cast<double>(refs);
}

bool
TimedRun::identicalTo(const TimedRun &other) const
{
    return scheme == other.scheme && bus == other.bus &&
           discipline == other.discipline && name == other.name &&
           nCpus == other.nCpus && refs == other.refs &&
           makespan == other.makespan &&
           busBusyCycles == other.busBusyCycles &&
           transactions == other.transactions &&
           queueDelay == other.queueDelay && cpus == other.cpus &&
           engine == other.engine;
}

TimedBusSim::TimedBusSim(
    const TimedBusConfig &cfg,
    std::unique_ptr<coherence::CoherenceEngine> engine)
    : _cfg(cfg), _engine(std::move(engine))
{
    if (!_engine)
        throw std::invalid_argument("TimedBusSim: engine is null");
}

TimedBusSim::~TimedBusSim() = default;

TimedRun
TimedBusSim::run(trace::RefSource &source)
{
    // A demux failure must not leave a previous run's results behind.
    _engine->reset();

    // Demux the stream into per-CPU SoA columns — the same shape a
    // prepared trace's timed streams carry — mapping sharing units
    // with the same UnitMapper sim::Simulator uses (so timed and
    // untimed runs agree on unit numbering).  Port demux always keys
    // by CPU, whatever the sharing domain.  Unit capacity is checked
    // here, before the engine sees any reference.
    std::vector<trace::PreparedCpuStream> streams;
    sim::UnitMapper cpuMap(sim::SharingDomain::Processor);
    sim::UnitMapper unitMap(_cfg.sim.domain);
    const mem::BlockMapper toBlock(_cfg.sim.blockBytes);
    const unsigned capacity = _engine->numUnits();

    constexpr std::size_t batchRecords = 4096;
    std::vector<trace::TraceRecord> records(batchRecords);
    std::size_t n;
    while ((n = source.nextBatch(records.data(), batchRecords)) != 0) {
        for (std::size_t i = 0; i < n; ++i) {
            const trace::TraceRecord &rec = records[i];
            const unsigned unit = unitMap.map(rec);
            if (unit >= capacity)
                throw std::runtime_error(
                    "TimedBusSim: trace uses more sharing units than "
                    "engine '" + _engine->results().name +
                    "' supports");
            const mem::BlockId block = toBlock(rec.addr);
            if (block > 0xffffffffULL)
                throw std::runtime_error(
                    "TimedBusSim: block index exceeds the 32-bit "
                    "port-stream column");
            const unsigned cpu = cpuMap.map(rec);
            if (cpu == streams.size())
                streams.emplace_back();
            trace::PreparedCpuStream &stream = streams[cpu];
            stream.block.push_back(
                static_cast<std::uint32_t>(block));
            stream.unit.push_back(static_cast<std::uint8_t>(unit));
            stream.typeFlags.push_back(
                trace::packTypeFlags(rec.type, rec.flags));
        }
    }

    std::vector<trace::PreparedCpuStreamCursor> cursors;
    cursors.reserve(streams.size());
    for (const trace::PreparedCpuStream &stream : streams)
        cursors.emplace_back(stream);
    std::vector<RequestPort> ports;
    ports.reserve(cursors.size());
    for (unsigned cpu = 0; cpu < cursors.size(); ++cpu)
        ports.emplace_back(cpu, &cursors[cpu]);
    return runPorts(ports);
}

TimedRun
TimedBusSim::run(const trace::PreparedTrace &prepared)
{
    if (!prepared.hasTimedStreams())
        throw std::invalid_argument(
            "TimedBusSim: prepared trace '" + prepared.name() +
            "' was decoded without timed per-CPU streams");
    const trace::PrepareOptions &opts = prepared.options();
    if (opts.blockBytes != _cfg.sim.blockBytes ||
        opts.domain != _cfg.sim.domain)
        throw std::invalid_argument(
            "TimedBusSim: prepared trace '" + prepared.name() +
            "' was decoded for a different block size or sharing "
            "domain than this run");
    if (prepared.numUnits() > _engine->numUnits())
        throw std::runtime_error(
            "TimedBusSim: trace uses more sharing units than "
            "engine '" + _engine->results().name + "' supports");

    const std::vector<trace::PreparedCpuStream> &streams =
        prepared.cpuStreams();
    std::vector<trace::PreparedCpuStreamCursor> cursors;
    cursors.reserve(streams.size());
    for (const trace::PreparedCpuStream &stream : streams)
        cursors.emplace_back(stream);
    std::vector<RequestPort> ports;
    ports.reserve(cursors.size());
    for (unsigned cpu = 0; cpu < cursors.size(); ++cpu)
        ports.emplace_back(cpu, &cursors[cpu]);
    return runPorts(ports);
}

TimedRun
TimedBusSim::run(const trace::StoredTrace &stored)
{
    if (!stored.hasTimedStreams())
        throw std::invalid_argument(
            "TimedBusSim: stored trace '" + stored.name() +
            "' was spilled without timed per-CPU streams");
    const trace::PrepareOptions &opts = stored.options();
    if (opts.blockBytes != _cfg.sim.blockBytes ||
        opts.domain != _cfg.sim.domain)
        throw std::invalid_argument(
            "TimedBusSim: stored trace '" + stored.name() +
            "' was decoded for a different block size or sharing "
            "domain than this run");
    if (stored.numUnits() > _engine->numUnits())
        throw std::runtime_error(
            "TimedBusSim: trace uses more sharing units than "
            "engine '" + _engine->results().name + "' supports");

    // One windowed file cursor per CPU; each keeps exactly one chunk
    // of its stream resident, so a timed replay of an arbitrarily
    // long store runs in O(nCpus × chunk) memory.
    std::vector<std::unique_ptr<trace::CpuRefCursor>> cursors;
    cursors.reserve(stored.numCpus());
    for (unsigned cpu = 0; cpu < stored.numCpus(); ++cpu)
        cursors.push_back(stored.cpuCursor(cpu));
    std::vector<RequestPort> ports;
    ports.reserve(cursors.size());
    for (unsigned cpu = 0; cpu < cursors.size(); ++cpu)
        ports.emplace_back(cpu, cursors[cpu].get());
    return runPorts(ports);
}

TimedRun
TimedBusSim::runPorts(std::vector<RequestPort> &ports)
{
    // Validates the cost options before anything runs.
    TransactionModel model(_cfg.scheme, _cfg.bus.costs, _cfg.costOpts);
    _engine->reset();
    if (_cfg.sim.expectedBlocks != 0)
        _engine->reserveBlocks(_cfg.sim.expectedBlocks);

    const unsigned nCpus = static_cast<unsigned>(ports.size());
    TimedRun result;
    result.scheme =
        sim::schemeName(_cfg.scheme, _cfg.costOpts.nPointers);
    result.bus = _cfg.bus.costs.name;
    result.discipline = disciplineName(_cfg.discipline);
    result.nCpus = nCpus;
    if (nCpus == 0) {
        result.engine = _engine->results();
        return result;
    }

    const auto arbiter = BusArbiter::make(_cfg.discipline, nCpus);

    // --- The discrete-event loop -------------------------------------
    EventQueue eq;
    std::vector<BusRequest> waiters;
    bool busBusy = false;
    [[maybe_unused]] unsigned busHolder = 0;
    bool busUsesMemory = false;
    std::uint64_t reqSeq = 0;

    // Push the next tenure of @p port's in-flight charge into the
    // arbitration queue; the grant phase at the end of the current
    // cycle considers it.
    const auto issue = [&](RequestPort &port, std::uint64_t now) {
        const TxnCharge &txn = port.nextTxn();
        waiters.push_back(BusRequest{port.cpu(), now, reqSeq++,
                                     txn.busCycles, txn.usesMemory});
    };

    for (unsigned p = 0; p < nCpus; ++p)
        eq.push(0, EventKind::CpuReady, p);

    while (!eq.empty()) {
        const std::uint64_t now = eq.nextTime();

        // Deliver every event of this cycle before arbitrating, so a
        // freed bus and the requests arriving on the same cycle meet
        // in one grant phase.
        while (!eq.empty() && eq.nextTime() == now) {
            const Event ev = eq.pop();
            RequestPort &port = ports[ev.cpu];

            if (ev.kind == EventKind::BusComplete) {
                assert(busBusy && busHolder == ev.cpu);
                busBusy = false;
                // Pipelined buses: the requester sees the data only
                // after the off-bus memory wait.
                const std::uint64_t done =
                    now + (busUsesMemory ? _cfg.bus.memExtraLatency
                                         : 0);
                if (!port.hasPendingTxn())
                    port.endStall(done);
                eq.push(done, EventKind::CpuReady, ev.cpu);
                continue;
            }

            // CpuReady: either issue the next tenure of a stalled
            // reference, or execute the next reference.
            if (port.hasPendingTxn()) {
                issue(port, now);
                continue;
            }
            if (!port.hasMoreRefs()) {
                port.finish(now);
                continue;
            }
            const PortRef ref = port.takeRef();
            _engine->access(ref.unit, ref.type, ref.block);
            const RefCharge charge = model.charge(_engine->results());
            if (charge.empty()) {
                eq.push(now + _cfg.cyclesPerRef, EventKind::CpuReady,
                        ev.cpu);
                continue;
            }
            port.beginStall(charge, now);
            issue(port, now);
        }

        if (!busBusy && !waiters.empty()) {
            const std::size_t pick = arbiter->pick(waiters);
            assert(pick < waiters.size());
            const BusRequest req = waiters[pick];
            waiters.erase(waiters.begin() +
                          static_cast<std::ptrdiff_t>(pick));
            arbiter->granted(req.cpu);
            result.queueDelay.sample(
                static_cast<std::size_t>(now - req.arrival));
            ++result.transactions;
            result.busBusyCycles += req.busCycles;
            busBusy = true;
            busHolder = req.cpu;
            busUsesMemory = req.usesMemory;
            eq.push(now + req.busCycles, EventKind::BusComplete,
                    req.cpu);
        }
    }
    assert(waiters.empty());

    for (const RequestPort &port : ports) {
        const CpuTimedStats &stats = port.stats();
        result.refs += stats.refs;
        result.makespan = std::max(result.makespan, stats.finishCycle);
        result.cpus.push_back(stats);
    }
    result.engine = _engine->results();
    return result;
}

} // namespace dirsim::timing
