#include "timing/event_queue.hh"

#include <algorithm>
#include <cassert>

namespace dirsim::timing
{

bool
EventQueue::before(const Event &a, const Event &b)
{
    if (a.time != b.time)
        return a.time < b.time;
    if (a.kind != b.kind)
        return a.kind < b.kind;
    if (a.cpu != b.cpu)
        return a.cpu < b.cpu;
    return a.seq < b.seq;
}

void
EventQueue::push(std::uint64_t time, EventKind kind, unsigned cpu)
{
    _heap.push_back(Event{time, kind, cpu, _nextSeq++});
    std::push_heap(_heap.begin(), _heap.end(),
                   [](const Event &a, const Event &b) {
                       return before(b, a); // Min-heap.
                   });
}

Event
EventQueue::pop()
{
    assert(!_heap.empty());
    std::pop_heap(_heap.begin(), _heap.end(),
                  [](const Event &a, const Event &b) {
                      return before(b, a);
                  });
    const Event front = _heap.back();
    _heap.pop_back();
    return front;
}

std::uint64_t
EventQueue::nextTime() const
{
    assert(!_heap.empty());
    return _heap.front().time;
}

} // namespace dirsim::timing
