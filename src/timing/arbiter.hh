/**
 * @file
 * Bus arbitration: pluggable service disciplines.
 *
 * When more than one CPU has a transaction queued, the arbiter decides
 * who gets the bus next — the service-discipline question Nikolov &
 * Lerato show changes shared-bus multiprocessor performance.  Three
 * disciplines are built in:
 *
 *  - FCFS: grant the oldest request (arrival cycle, then issue order).
 *    Globally fair in delay; ignores which CPU is asking.
 *  - RoundRobin: rotating priority — the search for a waiter starts
 *    one past the last CPU served, so a bus hog cannot starve its
 *    neighbours and per-CPU service is equalised.
 *  - FixedPriority: lowest port index wins.  Deliberately unfair;
 *    under load the high-index CPUs see unbounded queueing delay,
 *    which the contention bench makes visible.
 *
 * Contract: pick() is called only with a non-empty waiter list, must
 * return an index into that list, and must be deterministic — the
 * same waiter list and internal state always select the same request
 * (timed sweeps are bit-identical across --jobs because of this).
 * granted() tells stateful disciplines who won.  reset() returns the
 * arbiter to its initial state.
 */

#ifndef DIRSIM_TIMING_ARBITER_HH
#define DIRSIM_TIMING_ARBITER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dirsim::timing
{

/** One queued bus transaction awaiting grant. */
struct BusRequest
{
    unsigned cpu = 0;          //!< Requesting port index.
    std::uint64_t arrival = 0; //!< Cycle the request was issued.
    std::uint64_t seq = 0;     //!< Global issue order (tie-breaker).
    std::uint32_t busCycles = 0; //!< Occupancy once granted.
    bool usesMemory = false;   //!< Carries a main-memory access.
};

/** Built-in service disciplines. */
enum class Discipline
{
    FCFS,
    RoundRobin,
    FixedPriority,
};

/** Short lower-case name ("fcfs", "round-robin", "fixed-priority"). */
const std::string &disciplineName(Discipline d);

/** Parse a discipline name; throws std::invalid_argument on garbage. */
Discipline parseDiscipline(const std::string &name);

/** Abstract bus arbiter (see file header for the contract). */
class BusArbiter
{
  public:
    virtual ~BusArbiter() = default;

    /** Choose the next request; returns an index into @p waiting. */
    virtual std::size_t
    pick(const std::vector<BusRequest> &waiting) = 0;

    /** Inform the arbiter that @p cpu was granted the bus. */
    virtual void granted(unsigned cpu) { (void)cpu; }

    /** Return to the initial state. */
    virtual void reset() {}

    /** The discipline this arbiter implements. */
    virtual Discipline discipline() const = 0;

    /** Build an arbiter for @p d over @p nCpus ports. */
    static std::unique_ptr<BusArbiter> make(Discipline d,
                                            unsigned nCpus);
};

} // namespace dirsim::timing

#endif // DIRSIM_TIMING_ARBITER_HH
