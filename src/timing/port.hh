/**
 * @file
 * Per-CPU request port for the timed bus.
 *
 * A RequestPort owns one CPU's slice of the reference stream (the
 * demuxed per-CPU trace), its cursor, the in-flight RefCharge while
 * the CPU is stalled, and the stall/finish accounting that becomes
 * the TimedRun's per-CPU statistics.  The port is a passive state
 * machine — TimedBusSim drives it from the event loop:
 *
 *   Running --(ref needs the bus)--> Stalled(issue txn 1)
 *   Stalled --(txn complete, more txns)--> Stalled(issue next)
 *   Stalled --(last txn complete)--> Running
 *
 * The issuing processor does not proceed past a chargeable reference
 * until every one of its bus tenures has been granted and completed —
 * the blocking-processor model both service-discipline papers assume.
 */

#ifndef DIRSIM_TIMING_PORT_HH
#define DIRSIM_TIMING_PORT_HH

#include <cstdint>
#include <vector>

#include "mem/block.hh"
#include "timing/transactions.hh"
#include "trace/prepared.hh"
#include "trace/record.hh"

namespace dirsim::timing
{

/** Per-CPU timing statistics of one TimedRun. */
struct CpuTimedStats
{
    std::uint64_t refs = 0;         //!< References executed.
    std::uint64_t transactions = 0; //!< Bus tenures issued.
    /** Cycles from issuing a chargeable reference to resuming after
     *  its last transaction (queueing + service + off-bus waits). */
    std::uint64_t stallCycles = 0;
    std::uint64_t finishCycle = 0;  //!< Cycle the last reference retired.

    /** Fraction of this CPU's active time spent stalled on the bus. */
    double
    stallFraction() const
    {
        return finishCycle == 0
                   ? 0.0
                   : static_cast<double>(stallCycles) /
                         static_cast<double>(finishCycle);
    }

    bool operator==(const CpuTimedStats &other) const = default;
};

/** One pre-classified reference of a port's stream. */
struct PortRef
{
    unsigned unit;       //!< Engine sharing-domain index.
    trace::RefType type;
    mem::BlockId block;
};

/**
 * One CPU's interface to the timed bus (see file header).
 *
 * The port *reads* its stream through a trace::CpuRefCursor rather
 * than owning an array-of-structs copy: the timed replay either walks
 * a PreparedCpuStream borrowed from a shared PreparedTrace (or
 * demuxed locally from a raw source), or streams a chunk window at a
 * time out of a trace::StoredTrace — one virtual call per reference,
 * noise next to the event loop around it.  The cursor must outlive
 * the port.
 */
class RequestPort
{
  public:
    RequestPort(unsigned cpu, trace::CpuRefCursor *cursor)
        : _cpu(cpu), _cursor(cursor)
    {
    }

    unsigned cpu() const { return _cpu; }

    /** References remain to execute (may refill a file window). */
    bool hasMoreRefs() { return !_cursor->atEnd(); }

    /** Consume the next reference (hasMoreRefs() must hold). */
    PortRef takeRef();

    /**
     * Begin a stall: the reference consumed at cycle @p now produced
     * @p charge (must be non-empty).  Transactions are then drained
     * with nextTxn() / hasPendingTxn().
     */
    void beginStall(const RefCharge &charge, std::uint64_t now);

    /** A transaction is still waiting to be issued. */
    bool
    hasPendingTxn() const
    {
        return _txnNext < _charge.count;
    }

    /** Issue the next transaction of the in-flight charge. */
    const TxnCharge &nextTxn();

    /** End the stall at cycle @p now (all transactions completed). */
    void endStall(std::uint64_t now);

    /** Record that this CPU retired its whole stream at @p now. */
    void finish(std::uint64_t now) { _stats.finishCycle = now; }

    const CpuTimedStats &stats() const { return _stats; }

  private:
    unsigned _cpu;
    trace::CpuRefCursor *_cursor;

    RefCharge _charge;
    unsigned _txnNext = 0;
    std::uint64_t _stallStart = 0;

    CpuTimedStats _stats;
};

} // namespace dirsim::timing

#endif // DIRSIM_TIMING_PORT_HH
