#include "timing/port.hh"

#include <cassert>

namespace dirsim::timing
{

PortRef
RequestPort::takeRef()
{
    assert(hasMoreRefs());
    ++_stats.refs;
    std::uint32_t block;
    std::uint8_t unit;
    std::uint8_t typeFlags;
    _cursor->take(block, unit, typeFlags);
    return PortRef{unit, trace::packedRefType(typeFlags), block};
}

void
RequestPort::beginStall(const RefCharge &charge, std::uint64_t now)
{
    assert(!charge.empty());
    assert(!hasPendingTxn() && "previous charge not drained");
    _charge = charge;
    _txnNext = 0;
    _stallStart = now;
}

const TxnCharge &
RequestPort::nextTxn()
{
    assert(hasPendingTxn());
    ++_stats.transactions;
    return _charge.txns[_txnNext++];
}

void
RequestPort::endStall(std::uint64_t now)
{
    assert(!hasPendingTxn());
    _stats.stallCycles += now - _stallStart;
}

} // namespace dirsim::timing
