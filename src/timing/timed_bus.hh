/**
 * @file
 * Discrete-event timed bus simulator.
 *
 * The paper prices coherence traffic as frequency × static cost; the
 * bus is never *occupied*, so queueing, arbitration and processor
 * stall are invisible.  TimedBusSim replays the same per-CPU
 * reference streams the engines already consume, but issues every
 * chargeable transaction (the sim::CostModel event→cycles mapping,
 * recovered per reference by timing::TransactionModel) into a bus
 * with real occupancy, arbitrated by a pluggable discipline.
 *
 * Model:
 *  - Each CPU executes its stream in simulated-time order across
 *    CPUs (deterministic tie-breaking), one cycle per reference that
 *    needs no bus transaction.
 *  - A chargeable reference stalls its CPU: each of its bus tenures
 *    is queued, granted by the BusArbiter when the bus frees, and
 *    occupies the bus for its integer cycle cost; the CPU resumes
 *    when the last tenure (plus any off-bus memory wait, pipelined
 *    buses only) completes.
 *  - Bus occupancies come from bus::BusCosts, i.e. derive from the
 *    Table 1 BusPrimitives; on the pipelined bus the memory wait is
 *    off-bus and only delays the requester.
 *
 * Zero-contention anchor: with one CPU the bus is always free at
 * request time, so total bus-busy cycles equal the static cost
 * model's total exactly (integer for integer; tests/timing_test.cc
 * enforces it for every scheme × workload × bus) — the timed
 * subsystem degenerates to the paper's published Table 5 accounting.
 */

#ifndef DIRSIM_TIMING_TIMED_BUS_HH
#define DIRSIM_TIMING_TIMED_BUS_HH

#include <memory>
#include <string>
#include <vector>

#include "bus/bus_model.hh"
#include "coherence/engine.hh"
#include "sim/cost_model.hh"
#include "sim/simulator.hh"
#include "stats/histogram.hh"
#include "timing/arbiter.hh"
#include "timing/port.hh"
#include "trace/prepared.hh"
#include "trace/ref_source.hh"

namespace dirsim::timing
{

/** A bus organisation as the timed model sees it: occupancy table
 *  plus the off-bus latency the requester eats on memory reads. */
struct TimedBusModel
{
    bus::BusCosts costs;
    /** Cycles a memory read keeps the *requester* (not the bus)
     *  waiting beyond the bus tenure.  Pipelined buses release the
     *  bus during the memory wait; non-pipelined buses hold it, so
     *  the wait is already inside the occupancy. */
    unsigned memExtraLatency = 0;
};

/** The pipelined bus: occupancy from Table 2, memory wait off-bus. */
TimedBusModel timedPipelinedBus(
    const bus::BusPrimitives &prim = bus::BusPrimitives{});
/** The non-pipelined bus: the memory wait rides in the occupancy. */
TimedBusModel timedNonPipelinedBus(
    const bus::BusPrimitives &prim = bus::BusPrimitives{});

/** Configuration of one timed run. */
struct TimedBusConfig
{
    sim::Scheme scheme = sim::Scheme::Dir0B;
    sim::CostOptions costOpts;
    TimedBusModel bus = timedPipelinedBus();
    Discipline discipline = Discipline::FCFS;
    /** CPU cycles consumed by a reference that needs no bus tenure. */
    unsigned cyclesPerRef = 1;
    /** Block size and sharing domain (matches sim::Simulator). */
    sim::SimConfig sim;
};

/** Outcome of one timed run. */
struct TimedRun
{
    std::string scheme;
    std::string bus;
    std::string discipline;
    /** Sweep-point label (empty for direct TimedBusSim runs). */
    std::string name;

    unsigned nCpus = 0;
    std::uint64_t refs = 0;
    /** Cycle the last CPU retired its last reference. */
    std::uint64_t makespan = 0;
    /** Cycles the bus spent occupied (the equivalence quantity). */
    std::uint64_t busBusyCycles = 0;
    /** Bus tenures granted. */
    std::uint64_t transactions = 0;
    /** Cycles from issue to grant, one sample per tenure. */
    stats::Histogram queueDelay;
    /** Per-CPU statistics, by port index. */
    std::vector<CpuTimedStats> cpus;
    /** Final engine statistics of this run's interleaving. */
    coherence::EngineResults engine;

    /** Fraction of the makespan the bus was occupied. */
    double busUtilization() const;
    /** Mean cycles a tenure waited for grant. */
    double meanQueueDelay() const { return queueDelay.mean(); }
    /** 95th-percentile grant wait (nearest-rank). */
    double p95QueueDelay() const { return queueDelay.percentile(95.0); }
    /** Bus-busy cycles per reference — comparable to
     *  sim::CostBreakdown::total(). */
    double busCyclesPerRef() const;
    /** Mean cycles a reference costs its CPU, stall included. */
    double effectiveCyclesPerRef() const;

    /** Bit-identical comparison (every counter and histogram). */
    bool identicalTo(const TimedRun &other) const;
};

/**
 * Runs one (scheme, bus, discipline) configuration over a reference
 * stream.  The engine must match sim::engineKindFor(cfg.scheme),
 * exactly as with sim::computeCost, and its unit count must cover
 * the stream's sharing units (std::runtime_error otherwise).
 */
class TimedBusSim
{
  public:
    TimedBusSim(const TimedBusConfig &cfg,
                std::unique_ptr<coherence::CoherenceEngine> engine);
    ~TimedBusSim();

    /**
     * Stream @p source to exhaustion and return the timed result.
     * The stream is demuxed per CPU; engine accesses happen in
     * simulated-time order with deterministic tie-breaking, so a run
     * is a pure function of (config, engine, stream).
     */
    TimedRun run(trace::RefSource &source);

    /**
     * Replay an already-decoded trace (decoded with
     * PrepareOptions::timedStreams, same block size and sharing
     * domain as cfg.sim — std::invalid_argument otherwise).  The
     * per-CPU SoA streams feed the ports directly, skipping the
     * demux; results are bit-identical to run(RefSource&) over the
     * same stream.
     */
    TimedRun run(const trace::PreparedTrace &prepared);

    /**
     * Replay a stored (out-of-core) trace spilled with timed per-CPU
     * streams: each port streams its CPU's chunks through a windowed
     * file cursor, so memory stays O(nCpus × chunk).  Bit-identical
     * to run(const PreparedTrace&) over the same stream.
     */
    TimedRun run(const trace::StoredTrace &stored);

    const TimedBusConfig &config() const { return _cfg; }

  private:
    /** The discrete-event loop shared by both entry points. */
    TimedRun runPorts(std::vector<RequestPort> &ports);

    TimedBusConfig _cfg;
    std::unique_ptr<coherence::CoherenceEngine> _engine;
};

} // namespace dirsim::timing

#endif // DIRSIM_TIMING_TIMED_BUS_HH
