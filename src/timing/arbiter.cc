#include "timing/arbiter.hh"

#include <cassert>
#include <limits>
#include <stdexcept>

namespace dirsim::timing
{

const std::string &
disciplineName(Discipline d)
{
    static const std::string fcfs = "fcfs";
    static const std::string rr = "round-robin";
    static const std::string prio = "fixed-priority";
    switch (d) {
      case Discipline::FCFS:
        return fcfs;
      case Discipline::RoundRobin:
        return rr;
      case Discipline::FixedPriority:
        return prio;
    }
    return fcfs;
}

Discipline
parseDiscipline(const std::string &name)
{
    if (name == "fcfs")
        return Discipline::FCFS;
    if (name == "round-robin" || name == "rr")
        return Discipline::RoundRobin;
    if (name == "fixed-priority" || name == "priority")
        return Discipline::FixedPriority;
    throw std::invalid_argument(
        "unknown bus discipline '" + name +
        "' (expected fcfs, round-robin or fixed-priority)");
}

namespace
{

/** Oldest request first: arrival cycle, then global issue order. */
class FcfsArbiter final : public BusArbiter
{
  public:
    std::size_t
    pick(const std::vector<BusRequest> &waiting) override
    {
        assert(!waiting.empty());
        std::size_t best = 0;
        for (std::size_t i = 1; i < waiting.size(); ++i) {
            const BusRequest &r = waiting[i];
            const BusRequest &b = waiting[best];
            if (r.arrival < b.arrival ||
                (r.arrival == b.arrival && r.seq < b.seq))
                best = i;
        }
        return best;
    }

    Discipline discipline() const override { return Discipline::FCFS; }
};

/** Rotating priority: scan starts one past the last CPU served. */
class RoundRobinArbiter final : public BusArbiter
{
  public:
    explicit RoundRobinArbiter(unsigned nCpus)
        : _nCpus(nCpus), _last(nCpus - 1)
    {
    }

    std::size_t
    pick(const std::vector<BusRequest> &waiting) override
    {
        assert(!waiting.empty());
        std::size_t best = waiting.size();
        unsigned bestDist = std::numeric_limits<unsigned>::max();
        for (std::size_t i = 0; i < waiting.size(); ++i) {
            // Distance around the ring from the slot after the last
            // grantee; the smallest distance wins.
            const unsigned dist =
                (waiting[i].cpu + _nCpus - (_last + 1) % _nCpus) %
                _nCpus;
            if (dist < bestDist) {
                bestDist = dist;
                best = i;
            }
        }
        return best;
    }

    void granted(unsigned cpu) override { _last = cpu; }
    void reset() override { _last = _nCpus - 1; }

    Discipline
    discipline() const override
    {
        return Discipline::RoundRobin;
    }

  private:
    unsigned _nCpus;
    /** Last grantee; starts at nCpus-1 so CPU 0 benefits first. */
    unsigned _last;
};

/** Lowest port index wins, always. */
class FixedPriorityArbiter final : public BusArbiter
{
  public:
    std::size_t
    pick(const std::vector<BusRequest> &waiting) override
    {
        assert(!waiting.empty());
        std::size_t best = 0;
        for (std::size_t i = 1; i < waiting.size(); ++i) {
            if (waiting[i].cpu < waiting[best].cpu)
                best = i;
        }
        return best;
    }

    Discipline
    discipline() const override
    {
        return Discipline::FixedPriority;
    }
};

} // namespace

std::unique_ptr<BusArbiter>
BusArbiter::make(Discipline d, unsigned nCpus)
{
    if (nCpus == 0)
        throw std::invalid_argument(
            "BusArbiter::make: need at least one CPU");
    switch (d) {
      case Discipline::FCFS:
        return std::make_unique<FcfsArbiter>();
      case Discipline::RoundRobin:
        return std::make_unique<RoundRobinArbiter>(nCpus);
      case Discipline::FixedPriority:
        return std::make_unique<FixedPriorityArbiter>();
    }
    throw std::invalid_argument("BusArbiter::make: bad discipline");
}

} // namespace dirsim::timing
