#include "sim/sweep.hh"

#include <exception>
#include <mutex>
#include <stdexcept>

#include "sim/thread_pool.hh"

namespace dirsim::sim
{

SweepRunner::SweepRunner(unsigned jobs)
    : _jobs(ThreadPool::resolveThreads(jobs))
{
}

std::size_t
SweepRunner::add(SweepPoint point)
{
    if (!point.engines ||
        (!point.source && !point.prepared && !point.spans))
        throw std::invalid_argument(
            "SweepRunner: point needs an engine factory and a source "
            "factory, prepared trace or span-source factory");
    _points.push_back(std::move(point));
    return _points.size() - 1;
}

std::vector<std::size_t>
SweepRunner::plannedGroupSizes() const
{
    // Fusable: consecutive points sharing a non-empty fuseKey and an
    // equal sim config (one Simulator must serve the whole group).
    std::vector<std::size_t> sizes;
    for (std::size_t i = 0; i < _points.size();) {
        std::size_t end = i + 1;
        if (!_points[i].fuseKey.empty()) {
            while (end < _points.size() &&
                   _points[end].fuseKey == _points[i].fuseKey &&
                   _points[end].sim == _points[i].sim)
                ++end;
        }
        sizes.push_back(end - i);
        i = end;
    }
    return sizes;
}

std::vector<SweepPointResult>
SweepRunner::run()
{
    // Each fusion group becomes one task; runOrdered() provides the
    // deterministic submission-ordered collection, so a parallel
    // sweep is bit-identical to a serial one.  A group's Simulator
    // owns every member's engines and replays the lead point's
    // stream once for all of them (fused per SimConfig's strip
    // size); ungrouped points are just groups of one, which makes
    // this exactly the old per-point behaviour.
    const std::vector<std::size_t> sizes = plannedGroupSizes();
    std::vector<std::function<std::vector<SweepPointResult>()>> tasks;
    tasks.reserve(sizes.size());
    std::size_t begin = 0;
    for (const std::size_t size : sizes) {
        const std::size_t end = begin + size;
        tasks.push_back([this, begin, end] {
            const SweepPoint &lead = _points[begin];
            Simulator simulator(lead.sim);
            std::vector<std::size_t> engineCount(end - begin);
            for (std::size_t i = begin; i < end; ++i) {
                auto engines = _points[i].engines();
                engineCount[i - begin] = engines.size();
                for (auto &engine : engines)
                    simulator.addEngine(std::move(engine));
            }
            std::uint64_t refs;
            if (lead.spans) {
                const auto spans = lead.spans();
                refs = simulator.run(*spans);
            } else if (lead.prepared) {
                refs = simulator.run(*lead.prepared);
            } else {
                const auto source = lead.source();
                refs = simulator.run(*source);
            }
            std::vector<SweepPointResult> out(end - begin);
            std::size_t e = 0;
            for (std::size_t i = begin; i < end; ++i) {
                SweepPointResult &res = out[i - begin];
                res.name = _points[i].name;
                res.refs = refs;
                res.engines.reserve(engineCount[i - begin]);
                for (std::size_t k = 0; k < engineCount[i - begin];
                     ++k, ++e)
                    res.engines.push_back(
                        simulator.engine(e).results());
            }
            return out;
        });
        begin = end;
    }
    std::vector<SweepPointResult> results;
    results.reserve(_points.size());
    for (auto &group :
         runOrdered<std::vector<SweepPointResult>>(_jobs, tasks)) {
        for (SweepPointResult &res : group)
            results.push_back(std::move(res));
    }
    return results;
}

} // namespace dirsim::sim
