#include "sim/sweep.hh"

#include <exception>
#include <mutex>
#include <stdexcept>

#include "sim/thread_pool.hh"

namespace dirsim::sim
{

SweepRunner::SweepRunner(unsigned jobs)
    : _jobs(ThreadPool::resolveThreads(jobs))
{
}

std::size_t
SweepRunner::add(SweepPoint point)
{
    if (!point.engines || !point.source)
        throw std::invalid_argument(
            "SweepRunner: point needs engine and source factories");
    _points.push_back(std::move(point));
    return _points.size() - 1;
}

std::vector<SweepPointResult>
SweepRunner::run()
{
    // The collector: slots are pre-sized so completion order does not
    // matter, and every write lands under the mutex so run() returns
    // deterministic, submission-ordered output however the jobs were
    // scheduled.
    std::vector<SweepPointResult> results(_points.size());
    std::vector<std::exception_ptr> errors(_points.size());
    std::mutex collect;

    {
        ThreadPool pool(_jobs);
        for (std::size_t i = 0; i < _points.size(); ++i) {
            const SweepPoint &point = _points[i];
            pool.submit([&point, &results, &errors, &collect, i] {
                SweepPointResult res;
                res.name = point.name;
                std::exception_ptr error;
                try {
                    Simulator simulator(point.sim);
                    for (auto &engine : point.engines())
                        simulator.addEngine(std::move(engine));
                    const auto source = point.source();
                    res.refs = simulator.run(*source);
                    res.engines.reserve(simulator.numEngines());
                    for (std::size_t e = 0;
                         e < simulator.numEngines(); ++e)
                        res.engines.push_back(
                            simulator.engine(e).results());
                } catch (...) {
                    error = std::current_exception();
                }
                std::lock_guard<std::mutex> lock(collect);
                results[i] = std::move(res);
                errors[i] = error;
            });
        }
        pool.wait();
    }

    for (const std::exception_ptr &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
    return results;
}

} // namespace dirsim::sim
