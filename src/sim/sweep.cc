#include "sim/sweep.hh"

#include <exception>
#include <mutex>
#include <stdexcept>

#include "sim/thread_pool.hh"

namespace dirsim::sim
{

SweepRunner::SweepRunner(unsigned jobs)
    : _jobs(ThreadPool::resolveThreads(jobs))
{
}

std::size_t
SweepRunner::add(SweepPoint point)
{
    if (!point.engines ||
        (!point.source && !point.prepared && !point.spans))
        throw std::invalid_argument(
            "SweepRunner: point needs an engine factory and a source "
            "factory, prepared trace or span-source factory");
    _points.push_back(std::move(point));
    return _points.size() - 1;
}

std::vector<SweepPointResult>
SweepRunner::run()
{
    // Each point becomes one task; runOrdered() provides the
    // deterministic submission-ordered collection, so a parallel
    // sweep is bit-identical to a serial one.
    std::vector<std::function<SweepPointResult()>> tasks;
    tasks.reserve(_points.size());
    for (const SweepPoint &point : _points) {
        tasks.push_back([&point] {
            SweepPointResult res;
            res.name = point.name;
            Simulator simulator(point.sim);
            for (auto &engine : point.engines())
                simulator.addEngine(std::move(engine));
            if (point.spans) {
                const auto spans = point.spans();
                res.refs = simulator.run(*spans);
            } else if (point.prepared) {
                res.refs = simulator.run(*point.prepared);
            } else {
                const auto source = point.source();
                res.refs = simulator.run(*source);
            }
            res.engines.reserve(simulator.numEngines());
            for (std::size_t e = 0; e < simulator.numEngines(); ++e)
                res.engines.push_back(simulator.engine(e).results());
            return res;
        });
    }
    return runOrdered<SweepPointResult>(_jobs, tasks);
}

} // namespace dirsim::sim
