#include "sim/sweep.hh"

#include <cstddef>
#include <exception>
#include <mutex>
#include <stdexcept>

#include "coherence/multi_limited_engine.hh"
#include "sim/thread_pool.hh"

namespace dirsim::sim
{

namespace
{

constexpr std::size_t kNoLane = static_cast<std::size_t>(-1);

/** A fusion group's multi-configuration collapse plan. */
struct CollapsePlan
{
    /** Pointer counts of the collapsible cells, submission order. */
    std::vector<unsigned> lanePointers;
    unsigned units = 0;
    bool collapse = false;
};

/**
 * Decide whether the group [begin, end) collapses its DiriNB cells
 * into one MultiLimitedEngine: at least two cells carry a
 * multiPointers hint and all of them agree on the unit count.
 */
CollapsePlan
planCollapse(const std::vector<SweepPoint> &points, std::size_t begin,
             std::size_t end)
{
    CollapsePlan plan;
    bool unitsAgree = true;
    for (std::size_t i = begin; i < end; ++i) {
        const SweepPoint &point = points[i];
        if (point.multiPointers == 0)
            continue;
        if (point.multiUnits == 0)
            throw std::invalid_argument(
                "SweepRunner: multiPointers needs multiUnits");
        if (plan.lanePointers.empty())
            plan.units = point.multiUnits;
        else if (point.multiUnits != plan.units)
            unitsAgree = false;
        plan.lanePointers.push_back(point.multiPointers);
    }
    plan.collapse = unitsAgree && plan.lanePointers.size() >= 2;
    return plan;
}

} // namespace

SweepRunner::SweepRunner(unsigned jobs)
    : _jobs(ThreadPool::resolveThreads(jobs))
{
}

std::size_t
SweepRunner::add(SweepPoint point)
{
    if (!point.engines ||
        (!point.source && !point.prepared && !point.spans))
        throw std::invalid_argument(
            "SweepRunner: point needs an engine factory and a source "
            "factory, prepared trace or span-source factory");
    _points.push_back(std::move(point));
    return _points.size() - 1;
}

std::vector<std::size_t>
SweepRunner::plannedGroupSizes() const
{
    // Fusable: consecutive points sharing a non-empty fuseKey and an
    // equal sim config (one Simulator must serve the whole group).
    std::vector<std::size_t> sizes;
    for (std::size_t i = 0; i < _points.size();) {
        std::size_t end = i + 1;
        if (!_points[i].fuseKey.empty()) {
            while (end < _points.size() &&
                   _points[end].fuseKey == _points[i].fuseKey &&
                   _points[end].sim == _points[i].sim)
                ++end;
        }
        sizes.push_back(end - i);
        i = end;
    }
    return sizes;
}

std::vector<std::size_t>
SweepRunner::plannedMultiLanes() const
{
    std::vector<std::size_t> lanes;
    std::size_t begin = 0;
    for (const std::size_t size : plannedGroupSizes()) {
        const CollapsePlan plan =
            planCollapse(_points, begin, begin + size);
        lanes.push_back(plan.collapse ? plan.lanePointers.size() : 0);
        begin += size;
    }
    return lanes;
}

std::vector<SweepPointResult>
SweepRunner::run()
{
    // Each fusion group becomes one task; runOrdered() provides the
    // deterministic submission-ordered collection, so a parallel
    // sweep is bit-identical to a serial one.  A group's Simulator
    // owns every member's engines and replays the lead point's
    // stream once for all of them (fused per SimConfig's strip
    // size); ungrouped points are just groups of one, which makes
    // this exactly the old per-point behaviour.
    const std::vector<std::size_t> sizes = plannedGroupSizes();
    std::vector<std::function<std::vector<SweepPointResult>()>> tasks;
    tasks.reserve(sizes.size());
    std::size_t begin = 0;
    for (const std::size_t size : sizes) {
        const std::size_t end = begin + size;
        tasks.push_back([this, begin, end] {
            const SweepPoint &lead = _points[begin];
            Simulator simulator(lead.sim);
            // Multi-configuration collapse: the group's DiriNB cells
            // (multiPointers hints) become lanes of one shared
            // MultiLimitedEngine — one block-table probe per
            // reference for the whole pointer-count row.  Everyone
            // else (and every cell when the plan falls back) builds
            // its own engines.
            const CollapsePlan plan =
                planCollapse(_points, begin, end);
            coherence::MultiLimitedEngine *multi = nullptr;
            std::vector<std::size_t> lane(end - begin, kNoLane);
            std::vector<std::vector<std::size_t>> slots(end - begin);
            std::size_t nextSlot = 0;
            std::size_t nextLane = 0;
            for (std::size_t i = begin; i < end; ++i) {
                if (plan.collapse && _points[i].multiPointers != 0) {
                    if (!multi) {
                        auto engine = std::make_unique<
                            coherence::MultiLimitedEngine>(
                            plan.units, plan.lanePointers);
                        multi = engine.get();
                        simulator.addEngine(std::move(engine));
                        ++nextSlot;
                    }
                    lane[i - begin] = nextLane++;
                    continue;
                }
                auto engines = _points[i].engines();
                for (auto &engine : engines) {
                    simulator.addEngine(std::move(engine));
                    slots[i - begin].push_back(nextSlot++);
                }
            }
            std::uint64_t refs;
            if (lead.spans) {
                const auto spans = lead.spans();
                refs = simulator.run(*spans);
            } else if (lead.prepared) {
                refs = simulator.run(*lead.prepared);
            } else {
                const auto source = lead.source();
                refs = simulator.run(*source);
            }
            std::vector<SweepPointResult> out(end - begin);
            for (std::size_t i = begin; i < end; ++i) {
                SweepPointResult &res = out[i - begin];
                res.name = _points[i].name;
                res.refs = refs;
                if (lane[i - begin] != kNoLane) {
                    res.engines.push_back(
                        multi->laneResults(lane[i - begin]));
                    continue;
                }
                res.engines.reserve(slots[i - begin].size());
                for (const std::size_t slot : slots[i - begin])
                    res.engines.push_back(
                        simulator.engine(slot).results());
            }
            return out;
        });
        begin = end;
    }
    std::vector<SweepPointResult> results;
    results.reserve(_points.size());
    for (auto &group :
         runOrdered<std::vector<SweepPointResult>>(_jobs, tasks)) {
        for (SweepPointResult &res : group)
            results.push_back(std::move(res));
    }
    return results;
}

} // namespace dirsim::sim
