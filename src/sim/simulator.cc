#include "sim/simulator.hh"

#include <limits>
#include <stdexcept>
#include <vector>

namespace dirsim::sim
{

namespace
{

/** Records fetched per batch; large enough to amortise the virtual
 *  nextBatch() call, small enough to stay in L1/L2. */
constexpr std::size_t batchRecords = 4096;

} // namespace

Simulator::Simulator(const SimConfig &cfg)
    : _cfg(cfg), _unitMap(cfg.domain)
{
}

coherence::CoherenceEngine &
Simulator::addEngine(std::unique_ptr<coherence::CoherenceEngine> engine)
{
    _engines.push_back(std::move(engine));
    return *_engines.back();
}

std::uint64_t
Simulator::run(trace::RefSource &source)
{
    if (_cfg.expectedBlocks != 0) {
        for (auto &engine : _engines)
            engine->reserveBlocks(_cfg.expectedBlocks);
    }

    // The capacity shared by every engine; a unit index at or beyond
    // it can reach no engine, so it is checked while mapping units —
    // before the batch is dispatched anywhere.
    unsigned capacity = std::numeric_limits<unsigned>::max();
    const coherence::CoherenceEngine *smallest = nullptr;
    for (const auto &engine : _engines) {
        if (engine->numUnits() < capacity) {
            capacity = engine->numUnits();
            smallest = engine.get();
        }
    }

    std::uint64_t processed = 0;
    const mem::BlockMapper toBlock(_cfg.blockBytes);
    std::vector<trace::TraceRecord> records(batchRecords);
    std::vector<coherence::BlockAccess> batch(batchRecords);
    std::size_t n;
    while ((n = source.nextBatch(records.data(), batchRecords)) != 0) {
        // Map (and validate) the whole batch first: if the trace
        // overflows the smallest engine, no engine has seen any part
        // of this batch yet, and resetting them undoes the prefix.
        // Instruction fetches change no engine state, so they are
        // stripped here and reported in bulk — the unit map still
        // sees every record, keeping first-seen numbering intact.
        // The strip is branchless (write, then advance conditionally):
        // instruction/data interleaving is close to a coin flip, and a
        // mispredicted branch per record costs more than the store.
        std::size_t nData = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const trace::TraceRecord &rec = records[i];
            const unsigned unit = _unitMap.map(rec);
            if (unit >= capacity) {
                for (auto &engine : _engines)
                    engine->reset();
                _unitMap.clear();
                throw std::runtime_error(
                    "Simulator: trace uses more sharing units than "
                    "engine '" + smallest->results().name +
                    "' supports");
            }
            batch[nData] = {unit, rec.type, toBlock(rec.addr)};
            nData += rec.type != trace::RefType::Instr;
        }
        const std::uint64_t nInstr = n - nData;
        for (auto &engine : _engines) {
            if (nInstr != 0)
                engine->recordInstrs(nInstr);
            engine->accessBatch(batch.data(), nData);
        }
        processed += n;
    }
    return processed;
}

std::uint64_t
Simulator::run(const trace::PreparedTrace &prepared)
{
    const trace::PrepareOptions &opts = prepared.options();
    if (opts.blockBytes != _cfg.blockBytes ||
        opts.domain != _cfg.domain)
        throw std::invalid_argument(
            "Simulator: prepared trace '" + prepared.name() +
            "' was decoded for a different block size or sharing "
            "domain than this simulator");

    // Unlike the streaming path, the unit count is known up front, so
    // the capacity check happens before any engine sees anything — a
    // failed run mutates nothing.
    unsigned capacity = std::numeric_limits<unsigned>::max();
    const coherence::CoherenceEngine *smallest = nullptr;
    for (const auto &engine : _engines) {
        if (engine->numUnits() < capacity) {
            capacity = engine->numUnits();
            smallest = engine.get();
        }
    }
    if (prepared.numUnits() > capacity)
        throw std::runtime_error(
            "Simulator: trace uses more sharing units than engine '" +
            smallest->results().name + "' supports");

    if (_cfg.expectedBlocks != 0) {
        for (auto &engine : _engines)
            engine->reserveBlocks(_cfg.expectedBlocks);
    }
    if (prepared.numUnits() > _preparedUnits)
        _preparedUnits = prepared.numUnits();

    trace::PreparedTraceSpans spans(prepared);
    FusedReplay replay(
        FusedReplayOptions{.stripRefs = _cfg.replayStripRefs});
    return replay.run(spans, enginePointers()).totalRefs();
}

std::uint64_t
Simulator::run(trace::PreparedSpanSource &spans)
{
    const trace::PrepareOptions &opts = spans.options();
    if (opts.blockBytes != _cfg.blockBytes ||
        opts.domain != _cfg.domain)
        throw std::invalid_argument(
            "Simulator: prepared stream '" + spans.name() +
            "' was decoded for a different block size or sharing "
            "domain than this simulator");

    unsigned capacity = std::numeric_limits<unsigned>::max();
    const coherence::CoherenceEngine *smallest = nullptr;
    for (const auto &engine : _engines) {
        if (engine->numUnits() < capacity) {
            capacity = engine->numUnits();
            smallest = engine.get();
        }
    }
    if (spans.numUnits() > capacity)
        throw std::runtime_error(
            "Simulator: trace uses more sharing units than engine '" +
            smallest->results().name + "' supports");

    if (_cfg.expectedBlocks != 0) {
        for (auto &engine : _engines)
            engine->reserveBlocks(_cfg.expectedBlocks);
    }
    if (spans.numUnits() > _preparedUnits)
        _preparedUnits = spans.numUnits();

    FusedReplay replay(
        FusedReplayOptions{.stripRefs = _cfg.replayStripRefs});
    return replay.run(spans, enginePointers()).totalRefs();
}

std::vector<coherence::CoherenceEngine *>
Simulator::enginePointers() const
{
    std::vector<coherence::CoherenceEngine *> engines;
    engines.reserve(_engines.size());
    for (const auto &engine : _engines)
        engines.push_back(engine.get());
    return engines;
}

} // namespace dirsim::sim
