#include "sim/simulator.hh"

#include <stdexcept>

namespace dirsim::sim
{

Simulator::Simulator(const SimConfig &cfg) : _cfg(cfg) {}

coherence::CoherenceEngine &
Simulator::addEngine(std::unique_ptr<coherence::CoherenceEngine> engine)
{
    _engines.push_back(std::move(engine));
    return *_engines.back();
}

unsigned
Simulator::mapUnit(const trace::TraceRecord &rec)
{
    const unsigned key = _cfg.domain == SharingDomain::Process
                             ? rec.pid
                             : rec.cpu;
    auto [it, inserted] =
        _unitMap.try_emplace(key, static_cast<unsigned>(_unitMap.size()));
    return it->second;
}

std::uint64_t
Simulator::run(trace::RefSource &source)
{
    std::uint64_t processed = 0;
    trace::TraceRecord rec;
    while (source.next(rec)) {
        const unsigned unit = mapUnit(rec);
        for (auto &engine : _engines) {
            if (unit >= engine->numUnits()) {
                throw std::runtime_error(
                    "Simulator: trace uses more sharing units than "
                    "engine '" + engine->results().name +
                    "' supports");
            }
            engine->access(unit, rec.type,
                           mem::blockId(rec.addr, _cfg.blockBytes));
        }
        ++processed;
    }
    return processed;
}

} // namespace dirsim::sim
