#include "sim/simulator.hh"

#include <limits>
#include <stdexcept>
#include <vector>

namespace dirsim::sim
{

namespace
{

/** Records fetched per batch; large enough to amortise the virtual
 *  nextBatch() call, small enough to stay in L1/L2. */
constexpr std::size_t batchRecords = 4096;

} // namespace

Simulator::Simulator(const SimConfig &cfg) : _cfg(cfg) {}

coherence::CoherenceEngine &
Simulator::addEngine(std::unique_ptr<coherence::CoherenceEngine> engine)
{
    _engines.push_back(std::move(engine));
    return *_engines.back();
}

unsigned
Simulator::mapUnit(const trace::TraceRecord &rec)
{
    const unsigned key = _cfg.domain == SharingDomain::Process
                             ? rec.pid
                             : rec.cpu;
    auto [it, inserted] =
        _unitMap.try_emplace(key, static_cast<unsigned>(_unitMap.size()));
    return it->second;
}

std::uint64_t
Simulator::run(trace::RefSource &source)
{
    // The capacity shared by every engine; a unit index at or beyond
    // it can reach no engine, so it is checked while mapping units —
    // before the batch is dispatched anywhere.
    unsigned capacity = std::numeric_limits<unsigned>::max();
    const coherence::CoherenceEngine *smallest = nullptr;
    for (const auto &engine : _engines) {
        if (engine->numUnits() < capacity) {
            capacity = engine->numUnits();
            smallest = engine.get();
        }
    }

    struct Access
    {
        unsigned unit;
        trace::RefType type;
        mem::BlockId block;
    };

    std::uint64_t processed = 0;
    std::vector<trace::TraceRecord> records(batchRecords);
    std::vector<Access> batch(batchRecords);
    std::size_t n;
    while ((n = source.nextBatch(records.data(), batchRecords)) != 0) {
        // Map (and validate) the whole batch first: if the trace
        // overflows the smallest engine, no engine has seen any part
        // of this batch yet, and resetting them undoes the prefix.
        for (std::size_t i = 0; i < n; ++i) {
            const trace::TraceRecord &rec = records[i];
            const unsigned unit = mapUnit(rec);
            if (unit >= capacity) {
                for (auto &engine : _engines)
                    engine->reset();
                _unitMap.clear();
                throw std::runtime_error(
                    "Simulator: trace uses more sharing units than "
                    "engine '" + smallest->results().name +
                    "' supports");
            }
            batch[i] = {unit, rec.type,
                        mem::blockId(rec.addr, _cfg.blockBytes)};
        }
        for (auto &engine : _engines) {
            for (std::size_t i = 0; i < n; ++i)
                engine->access(batch[i].unit, batch[i].type,
                               batch[i].block);
        }
        processed += n;
    }
    return processed;
}

} // namespace dirsim::sim
