#include "sim/fused_replay.hh"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

namespace dirsim::sim
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Hand @p slice to every engine, timing each when asked. */
inline void
dispatchStrip(const coherence::PreparedSlice &slice,
              const std::vector<coherence::CoherenceEngine *> &engines,
              std::vector<double> *seconds)
{
    if (seconds == nullptr) {
        for (coherence::CoherenceEngine *engine : engines)
            engine->accessPrepared(slice);
        return;
    }
    for (std::size_t e = 0; e < engines.size(); ++e) {
        const auto t0 = Clock::now();
        engines[e]->accessPrepared(slice);
        (*seconds)[e] +=
            std::chrono::duration<double>(Clock::now() - t0).count();
    }
}

} // namespace

FusedReplayRun
FusedReplay::run(
    trace::PreparedSpanSource &spans,
    const std::vector<coherence::CoherenceEngine *> &engines) const
{
    FusedReplayRun out;
    out.instrRefs = spans.instrRefs();
    std::vector<double> seconds(
        _opts.timeEngines ? engines.size() : 0, 0.0);
    std::vector<double> *timing =
        _opts.timeEngines ? &seconds : nullptr;

    if (out.instrRefs != 0) {
        for (coherence::CoherenceEngine *engine : engines)
            engine->recordInstrs(out.instrRefs);
    }

    spans.rewind();
    trace::PreparedSpan span;
    std::uint64_t data = 0;
    while (spans.nextSpan(span)) {
        if (span.n == 0)
            continue;
        if (_opts.stripRefs == 0) {
            // Escape hatch: whole-span dispatch, the pre-fusion shape.
            const coherence::PreparedSlice slice{
                span.block, span.unit, span.typeFlags, span.n};
            dispatchStrip(slice, engines, timing);
        } else {
            for (std::size_t base = 0; base < span.n;
                 base += _opts.stripRefs) {
                const std::size_t n =
                    std::min(_opts.stripRefs, span.n - base);
                const coherence::PreparedSlice slice{
                    span.block + base, span.unit + base,
                    span.typeFlags + base, n};
                dispatchStrip(slice, engines, timing);
            }
        }
        data += span.n;
    }
    if (data != spans.dataRefs())
        throw std::runtime_error(
            "FusedReplay: prepared stream '" + spans.name() +
            "' yielded " + std::to_string(data) +
            " data references but its summary declares " +
            std::to_string(spans.dataRefs()));
    out.dataRefs = data;
    out.engineSeconds = std::move(seconds);
    return out;
}

} // namespace dirsim::sim
