/**
 * @file
 * Trace-driven multiprocessor simulation driver.
 *
 * Streams a reference source through any number of coherence engines
 * in one pass (the engines are independent state models, so a single
 * traversal serves every protocol — Section 4.1 of the paper makes the
 * same observation to get one simulation run per protocol).
 *
 * The sharing domain implements Section 4.4's choice: the paper
 * considers "sharing between processes (as opposed to sharing between
 * processors)" to exclude migration-induced sharing, and checked that
 * processor-based numbers were not significantly different.  Both
 * domains are supported here; the extension bench reproduces the
 * check.
 */

#ifndef DIRSIM_SIM_SIMULATOR_HH
#define DIRSIM_SIM_SIMULATOR_HH

#include <memory>
#include <vector>

#include "coherence/engine.hh"
#include "sim/fused_replay.hh"
#include "sim/unit_map.hh"
#include "trace/prepared.hh"
#include "trace/ref_source.hh"

namespace dirsim::sim
{

/** Driver configuration. */
struct SimConfig
{
    unsigned blockBytes = 16; //!< The paper's 4-word block.
    SharingDomain domain = SharingDomain::Process;
    /**
     * Expected distinct blocks the trace touches (0 = unknown).  A
     * hint only — forwarded to each engine's reserveBlocks() before
     * streaming so the per-block tables are sized once instead of
     * rehashing while the hot loop runs.  gen::expectedUniqueBlocks()
     * derives it from workload metadata.
     */
    std::uint64_t expectedBlocks = 0;
    /**
     * References per fused-replay strip for the prepared paths (see
     * sim/fused_replay.hh): every strip visits all engines before the
     * column walk advances, so the columns are read from memory once
     * per run instead of once per engine.  0 restores the pre-fusion
     * shape (each engine scans the whole stream in turn) — the A/B
     * escape hatch.  Either way the replay is bit-identical: strip
     * boundaries are invisible to the coherence model, exactly like
     * span boundaries.
     */
    std::size_t replayStripRefs = kDefaultReplayStripRefs;

    bool operator==(const SimConfig &) const = default;
};

/** Runs traces through a set of coherence engines. */
class Simulator
{
  public:
    explicit Simulator(const SimConfig &cfg = SimConfig{});

    /**
     * Register an engine.  Ownership transfers; the engine's unit
     * count bounds the number of distinct processes/CPUs the trace may
     * contain.
     */
    coherence::CoherenceEngine &
    addEngine(std::unique_ptr<coherence::CoherenceEngine> engine);

    /**
     * Stream @p source to exhaustion through every engine.
     *
     * Records are fetched in batches and each engine consumes the
     * whole batch in its own inner loop, so the per-record virtual
     * dispatch of RefSource::next() is amortised and engine state
     * stays hot in cache.
     *
     * @return Number of references processed.
     * @throws std::runtime_error if the trace contains more sharing
     *         units than an engine supports.  Unit capacity is checked
     *         before a batch reaches any engine, and on failure every
     *         engine is reset() and the unit map cleared, so a failed
     *         run leaves no partially-accumulated state behind.
     */
    std::uint64_t run(trace::RefSource &source);

    /**
     * Replay an already-decoded trace through every engine: one bulk
     * instruction count plus one dense SoA scan per engine, with no
     * per-record decode at all.  Bit-identical to streaming the raw
     * trace through run(RefSource&) — the prepared decode froze the
     * same unit numbering and block mapping this driver would compute.
     *
     * @return Number of references processed (instr + data).
     * @throws std::invalid_argument if @p prepared was decoded for a
     *         different block size or sharing domain than this
     *         simulator's config.
     * @throws std::runtime_error if the trace contains more sharing
     *         units than an engine supports; thrown before any engine
     *         sees a reference, so a failed run mutates nothing.
     */
    std::uint64_t run(const trace::PreparedTrace &prepared);

    /**
     * Replay a prepared stream span by span: same decode-free hot
     * loop as run(const PreparedTrace&), but the columns arrive as a
     * PreparedSpan sequence, so the backing storage never needs to be
     * contiguous — or even resident.  This is the out-of-core replay
     * path (trace::StoredTrace::spanCursor()); engines are stateful
     * across spans, so the result is bit-identical to replaying one
     * contiguous trace.  The source is rewound before use.
     *
     * @return Number of references processed (instr + data).
     * @throws std::invalid_argument / std::runtime_error exactly as
     *         run(const PreparedTrace&); the geometry checks use the
     *         source's stream summary, so a failed run mutates
     *         nothing.
     */
    std::uint64_t run(trace::PreparedSpanSource &spans);

    const SimConfig &config() const { return _cfg; }
    std::size_t numEngines() const { return _engines.size(); }
    coherence::CoherenceEngine &engine(std::size_t i)
    {
        return *_engines[i];
    }
    const coherence::CoherenceEngine &engine(std::size_t i) const
    {
        return *_engines[i];
    }

    /** Distinct sharing units seen so far. */
    unsigned
    unitsSeen() const
    {
        return _unitMap.size() > _preparedUnits ? _unitMap.size()
                                                : _preparedUnits;
    }

  private:
    /** Non-owning engine list in registration order (FusedReplay). */
    std::vector<coherence::CoherenceEngine *> enginePointers() const;

    SimConfig _cfg;
    std::vector<std::unique_ptr<coherence::CoherenceEngine>> _engines;
    UnitMapper _unitMap;
    /** Units covered by prepared replays (they bypass _unitMap). */
    unsigned _preparedUnits = 0;
};

} // namespace dirsim::sim

#endif // DIRSIM_SIM_SIMULATOR_HH
