/**
 * @file
 * Memoizing repository of prepared traces.
 *
 * Every sweep point over the same workload replays the same reference
 * stream (Section 4.1 of the paper: one trace feeds every protocol),
 * so the expensive part — synthesizing the workload and decoding it
 * into the SoA prepared format — should happen once per workload, not
 * once per sweep point.  The repository keys a cache on the complete
 * (WorkloadConfig, PrepareOptions) value: a 100-point fig2/fig3 sweep
 * then generates and decodes 3 workloads instead of 100.
 *
 * Thread safety: concurrent get() calls for the same key build the
 * trace exactly once — the first caller builds, the rest block on a
 * shared future.  Distinct keys build independently.  The returned
 * PreparedTrace is immutable and shared; it stays alive as long as
 * any caller holds the pointer, even if the repository evicts it.
 *
 * Generation itself is inherently serial (one RNG stream and shared
 * lock state define the interleaving), but the decode parallelises:
 * the builder's planning scan freezes all write offsets, after which
 * chunk decoding fans out across a thread pool with a merge that is
 * deterministic by construction.
 */

#ifndef DIRSIM_SIM_TRACE_REPO_HH
#define DIRSIM_SIM_TRACE_REPO_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "gen/workload.hh"
#include "trace/prepared.hh"

namespace dirsim::sim
{

/** Thread-safe build-once cache of prepared workload traces. */
class TraceRepository
{
  public:
    /**
     * @param jobs Decode worker threads per build; 0 = one per
     *        hardware thread.
     * @param maxBytes Soft budget for cached column bytes; least-
     *        recently-used entries are dropped past it (handed-out
     *        pointers keep their data alive regardless).
     */
    explicit TraceRepository(unsigned jobs = 0,
                             std::size_t maxBytes =
                                 512ull * 1024 * 1024);

    /**
     * The prepared trace for @p cfg decoded with @p opts, built on
     * first request and shared thereafter.  Build failures propagate
     * to every concurrent waiter and are not cached.
     */
    std::shared_ptr<const trace::PreparedTrace>
    get(const gen::WorkloadConfig &cfg,
        const trace::PrepareOptions &opts = {});

    /** Build attempts: times a get() missed the cache and actually
     *  generated + decoded, failed tries included (test hook). */
    std::uint64_t buildCount() const
    {
        return _buildCount.load(std::memory_order_relaxed);
    }

    /** Drop every cached entry (outstanding pointers stay valid). */
    void clear();

    /** Entries currently cached. */
    std::size_t size() const;

    /** The process-wide repository the sweep drivers share. */
    static TraceRepository &global();

    /**
     * Canonical cache key: every field of the workload and prepare
     * configurations, serialised positionally (doubles bit-cast).
     * Exposed for tests asserting key completeness.
     */
    static std::string cacheKey(const gen::WorkloadConfig &cfg,
                                const trace::PrepareOptions &opts);

  private:
    using Ptr = std::shared_ptr<const trace::PreparedTrace>;

    struct Entry
    {
        std::shared_ptr<std::promise<Ptr>> promise;
        std::shared_future<Ptr> future;
        std::uint64_t lastUse = 0;
        std::size_t bytes = 0;
        bool ready = false;
    };

    Ptr build(const gen::WorkloadConfig &cfg,
              const trace::PrepareOptions &opts) const;
    /** Drop LRU ready entries past the byte budget (mutex held). */
    void evictLocked();

    unsigned _jobs;
    std::size_t _maxBytes;
    mutable std::mutex _mutex;
    std::map<std::string, Entry> _entries;
    std::uint64_t _tick = 0;
    std::atomic<std::uint64_t> _buildCount{0};
};

} // namespace dirsim::sim

#endif // DIRSIM_SIM_TRACE_REPO_HH
