/**
 * @file
 * Memoizing repository of prepared traces.
 *
 * Every sweep point over the same workload replays the same reference
 * stream (Section 4.1 of the paper: one trace feeds every protocol),
 * so the expensive part — synthesizing the workload and decoding it
 * into the SoA prepared format — should happen once per workload, not
 * once per sweep point.  The repository keys a cache on the complete
 * (WorkloadConfig, PrepareOptions) value: a 100-point fig2/fig3 sweep
 * then generates and decodes 3 workloads instead of 100.
 *
 * Thread safety: concurrent get() calls for the same key build the
 * trace exactly once — the first caller builds, the rest block on a
 * shared future.  Distinct keys build independently.  The returned
 * PreparedTrace is immutable and shared; it stays alive as long as
 * any caller holds the pointer, even if the repository evicts it.
 *
 * Generation itself is inherently serial (one RNG stream and shared
 * lock state define the interleaving), but the decode parallelises:
 * the builder's planning scan freezes all write offsets, after which
 * chunk decoding fans out across a thread pool with a merge that is
 * deterministic by construction.
 *
 * Disk tier: setDiskCache() adds a persistent second tier under a
 * cache directory, so the build survives the *process*.  Cache files
 * are stored-trace files (trace/store.hh) named by a hash of the
 * positional cacheKey, with the full key's fingerprint recorded in
 * the header (a filename collision is detected, not served).  Writes
 * go to a temp file and rename into place — crash-safe and safe
 * against concurrent processes filling the same directory.  The tier
 * is LRU by atime under a byte budget (hits touch the file, so LRU
 * survives relatime/noatime mounts); getStored() serves the file as
 * a windowed out-of-core trace without ever materialising it, and on
 * a full miss spills straight from the workload generator in O(chunk)
 * memory.
 */

#ifndef DIRSIM_SIM_TRACE_REPO_HH
#define DIRSIM_SIM_TRACE_REPO_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "gen/direct_prepare.hh"
#include "gen/workload.hh"
#include "trace/prepared.hh"
#include "trace/store.hh"

namespace dirsim::sim
{

/** Persistent disk tier configuration (off when dir is empty). */
struct DiskCacheConfig
{
    /** Cache directory; created on setDiskCache() if absent. */
    std::string dir;
    /** Byte budget for the directory; least-recently-*used* files
     *  (by atime, refreshed on every hit) are deleted past it.  The
     *  most recent file survives even when it alone exceeds the
     *  budget — deleting it would just respill it. */
    std::uint64_t budgetBytes = 4ull * 1024 * 1024 * 1024;
    /** References per chunk when spilling.  A replay-time parameter
     *  only (bounds streaming RSS); deliberately NOT part of the
     *  cache key — a warm file replays identically whatever its
     *  chunking. */
    std::uint64_t chunkRefs = trace::kDefaultChunkRefs;
};

/** Observable repository behaviour (--repo-stats). */
struct RepoStats
{
    std::uint64_t hits = 0;       //!< In-memory tier hits.
    std::uint64_t misses = 0;     //!< In-memory tier misses.
    std::uint64_t builds = 0;     //!< Full generate + prepare runs.
    std::uint64_t diskHits = 0;   //!< Misses served from a warm file.
    std::uint64_t diskWrites = 0; //!< Store files spilled.
    std::uint64_t evictions = 0;  //!< In-memory LRU evictions.
    std::uint64_t diskEvictions = 0; //!< Disk LRU file deletions.

    /** One-line human-readable rendering. */
    std::string summary() const;
};

/** Thread-safe build-once cache of prepared workload traces. */
class TraceRepository
{
  public:
    /**
     * @param jobs Decode worker threads per build; 0 = one per
     *        hardware thread.
     * @param maxBytes Soft budget for cached column bytes; least-
     *        recently-used entries are dropped past it (handed-out
     *        pointers keep their data alive regardless).
     */
    explicit TraceRepository(unsigned jobs = 0,
                             std::size_t maxBytes =
                                 512ull * 1024 * 1024);

    /**
     * The prepared trace for @p cfg decoded with @p opts, built on
     * first request and shared thereafter.  Build failures propagate
     * to every concurrent waiter and are not cached.
     */
    std::shared_ptr<const trace::PreparedTrace>
    get(const gen::WorkloadConfig &cfg,
        const trace::PrepareOptions &opts = {});

    /**
     * The same workload as an out-of-core StoredTrace: replayable
     * via spanCursor()/cpuCursor() with O(chunk) resident memory and
     * never fully materialised.  A warm cache file is served as-is;
     * a miss streams generate → decode → spill in one pass.  Requires
     * a configured disk tier (std::logic_error otherwise).  Like
     * get(), concurrent calls for one key do the work exactly once.
     */
    std::shared_ptr<const trace::StoredTrace>
    getStored(const gen::WorkloadConfig &cfg,
              const trace::PrepareOptions &opts = {});

    /**
     * Enable (or reconfigure) the persistent disk tier.  Creates
     * @p cfg.dir if needed; an empty dir turns the tier off.
     */
    void setDiskCache(const DiskCacheConfig &cfg);

    /**
     * Route cold builds through the single-pass direct generate→
     * prepare pipeline (gen/direct_prepare.hh) instead of the legacy
     * generateTrace + two-phase decode.  On by default; the columns
     * are bit-identical either way (--no-direct-gen is the A/B
     * hatch).  timedStreams builds always use the two-phase path.
     */
    void setDirectGen(bool enabled);

    /** Direct generate→prepare pipeline currently enabled. */
    bool directGenEnabled() const;

    /** Pack-chunk size for the direct pipeline (0 = clamp to 1). */
    void setDirectGenChunkRefs(std::uint64_t chunkRefs);

    /** Disk tier currently configured. */
    bool diskCacheEnabled() const;

    /** Build attempts: times a get() missed the cache and actually
     *  generated + decoded, failed tries included (test hook). */
    std::uint64_t buildCount() const
    {
        return _buildCount.load(std::memory_order_relaxed);
    }

    /** Snapshot of the hit/miss/eviction counters. */
    RepoStats stats() const;

    /** Drop every cached entry (outstanding pointers stay valid;
     *  disk-tier files are NOT touched — they are the point). */
    void clear();

    /** Entries currently cached. */
    std::size_t size() const;

    /** The process-wide repository the sweep drivers share. */
    static TraceRepository &global();

    /**
     * Canonical cache key: every field of the workload and prepare
     * configurations, serialised positionally (doubles bit-cast).
     * Exposed for tests asserting key completeness.
     */
    static std::string cacheKey(const gen::WorkloadConfig &cfg,
                                const trace::PrepareOptions &opts);

  private:
    using Ptr = std::shared_ptr<const trace::PreparedTrace>;
    using StoredPtr = std::shared_ptr<const trace::StoredTrace>;

    struct Entry
    {
        std::shared_ptr<std::promise<Ptr>> promise;
        std::shared_future<Ptr> future;
        std::uint64_t lastUse = 0;
        std::size_t bytes = 0;
        bool ready = false;
    };

    struct StoredEntry
    {
        std::shared_ptr<std::promise<StoredPtr>> promise;
        std::shared_future<StoredPtr> future;
    };

    Ptr build(const gen::WorkloadConfig &cfg,
              const trace::PrepareOptions &opts) const;
    /** Drop LRU ready entries past the byte budget (mutex held). */
    void evictLocked();

    /** Cache-file path for @p key (disk tier must be on). */
    std::string diskPathFor(const std::string &key) const;
    /** Open @p key's cache file if present and valid; null on miss.
     *  Touches the file's timestamps (the disk tier's LRU clock). */
    StoredPtr openDiskEntry(const std::string &key,
                            const trace::PrepareOptions &opts);
    /** Spill @p trace as @p key's cache file (temp + rename). */
    void spillToDisk(const std::string &key,
                     const trace::PreparedTrace &trace);
    /** Delete LRU files past the disk budget; @p spare (the file the
        caller just wrote, if any) is never a victim. */
    void evictDisk(const std::string &spare = std::string());

    unsigned _jobs;
    std::size_t _maxBytes;
    bool _directGen = true;
    gen::DirectGenConfig _directCfg;
    mutable std::mutex _mutex;
    std::map<std::string, Entry> _entries;
    std::map<std::string, StoredEntry> _stored;
    DiskCacheConfig _disk;
    std::uint64_t _tick = 0;
    std::atomic<std::uint64_t> _buildCount{0};
    std::atomic<std::uint64_t> _hits{0};
    std::atomic<std::uint64_t> _misses{0};
    std::atomic<std::uint64_t> _diskHits{0};
    std::atomic<std::uint64_t> _diskWrites{0};
    std::atomic<std::uint64_t> _evictions{0};
    std::atomic<std::uint64_t> _diskEvictions{0};
};

} // namespace dirsim::sim

#endif // DIRSIM_SIM_TRACE_REPO_HH
