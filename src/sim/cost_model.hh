/**
 * @file
 * Protocol cost models: event frequencies x bus-cycle costs.
 *
 * This encodes the paper's accounting, recovered from Sections 4-6 and
 * validated against the published cumulative numbers (Table 5 row
 * "cumulative": Dir1NB 0.3210, WTI 0.1466, Dir0B 0.0491, Dragon
 * 0.0336 bus cycles per reference on the pipelined bus):
 *
 *  - First-reference misses are counted in the event tables but never
 *    charged ("we exclude the misses caused by the first reference to
 *    a block ... because these occur in a uniprocessor infinite cache
 *    as well", Section 4).
 *  - Instruction fetches are never charged.
 *  - A read miss serviced by a dirty remote copy is charged as the
 *    request address plus a write-back: the requester snarfs the data
 *    while memory is updated.
 *  - Directory checks are overlapped with memory accesses whenever a
 *    memory access is in flight; only standalone checks (write hits to
 *    clean blocks) are charged.
 *
 * Per-scheme charging (pipelined-bus cycles in parentheses):
 *
 *  Dir1NB / DiriNB:  rm/wm clean: memory access (5) + displacement
 *    invalidate (1) when a pointer had to be freed; rm/wm dirty:
 *    request (1) + invalidate (1) + write-back (4); write hits free
 *    for i = 1, directory check + directed invalidates for i >= 2.
 *  Dir0B:  rm clean: 5; rm dirty: dir-check (1) + write-back (4);
 *    wm clean: 5 + broadcast invalidate (1); wm dirty: 1 + 4 + 1;
 *    wh clean: dir check (1) + broadcast invalidate (1) unless the
 *    directory's "clean in exactly one cache" state suppresses it.
 *  DirnNB (sequential invalidates): as Dir0B but each invalidation
 *    event costs one cycle per actual copy invalidated.
 *  DiriB:  as DirnNB while copies <= i (directed), otherwise a
 *    broadcast costing b cycles (b is a model parameter).
 *  WTI:  every write goes through (1); misses fetch from memory (5);
 *    snooping makes invalidation free.
 *  Dragon:  misses fetch from memory or the owning cache (5); write
 *    hits to shared blocks distribute a one-word update (1).
 *  Berkeley:  Dir0B with the directory check priced at zero (the
 *    cache's own state supplies the sharing information).
 *  BerkeleyOwn:  the real ownership protocol: any clean write hit
 *    broadcasts one invalidate (no exclusivity knowledge); a miss to
 *    an owned block is a cache-to-cache supply with no memory
 *    write-back.  On the pipelined bus this prices like the flush
 *    (the paper's aside); on the non-pipelined bus it is cheaper.
 *  MESI:  Illinois-style snoopy: the exclusive-clean state makes
 *    exclusive write hits silent; shared write hits broadcast one
 *    invalidate; misses to cached blocks are supplied cache-to-cache.
 *  Yen-Fu:  Dir0B with the standalone check on exclusive clean blocks
 *    free (the single bit answers it) but one extra bus cycle per
 *    1 -> 2 holder transition to keep single bits current.
 */

#ifndef DIRSIM_SIM_COST_MODEL_HH
#define DIRSIM_SIM_COST_MODEL_HH

#include <string>

#include "bus/bus_model.hh"
#include "coherence/results.hh"

namespace dirsim::sim
{

/** The protocols the library can cost. */
enum class Scheme
{
    Dir1NB,   //!< Single pointer, no broadcast (uses LimitedEngine i=1).
    DirINB,   //!< i pointers, no broadcast (LimitedEngine, i >= 2).
    Dir0B,    //!< Archibald-Baer two-bit broadcast scheme.
    DirNNBSeq,//!< Full map, sequential directed invalidates (Section 6).
    DirIB,    //!< i pointers + broadcast bit (Section 6).
    WTI,      //!< Write-through-with-invalidate snoopy.
    Dragon,   //!< Update snoopy.
    Berkeley, //!< Berkeley Ownership estimate (Section 5 aside).
    YenFu,    //!< Yen-Fu single-bit refinement (Section 2).
    BerkeleyOwn, //!< Real Berkeley Ownership protocol (owner supplies).
    MESI,     //!< Illinois/MESI snoopy (exclusive-clean state).
};

/** Which engine's results a scheme must be costed from. */
enum class EngineKind
{
    Inval,   //!< InvalEngine (multiple clean / single dirty).
    Limited, //!< LimitedEngine with the scheme's pointer count.
    Dragon,  //!< DragonEngine.
    Berkeley,//!< BerkeleyEngine (ownership persists across reads).
};

/** Engine required to cost @p scheme. */
EngineKind engineKindFor(Scheme scheme);

/** Cost-model parameters. */
struct CostOptions
{
    /** i for DirINB / DirIB. */
    unsigned nPointers = 1;
    /** Broadcast invalidate cost b in cycles (Dir1B model of Sec. 6). */
    double broadcastCost = 1.0;
    /** Fixed overhead q added to every bus transaction (Section 5.1). */
    double overheadQ = 0.0;
};

/** Bus cycles per reference, broken down by operation class. */
struct CostBreakdown
{
    std::string scheme;
    std::string bus;

    /** @name Cycles per reference by category (Table 5 rows).
     *  @{ */
    double memAccess = 0.0;
    double cacheAccess = 0.0;
    double writeBack = 0.0;
    double writeWord = 0.0; //!< Write-throughs and write updates.
    double dirCheck = 0.0;  //!< Non-overlapped directory accesses.
    double invalidate = 0.0;
    double overhead = 0.0;  //!< q-cycles (Section 5.1 sensitivity).
    /** @} */

    /** Bus transactions per reference (Figure 5 / Section 5.1). */
    double transactionsPerRef = 0.0;

    /** Total bus cycles per reference (Table 5 cumulative row). */
    double total() const;
    /** Average cycles per bus transaction (Figure 5). */
    double perTransaction() const;
};

/** Human-readable scheme name ("Dir1NB", "Dir4B", ...). */
std::string schemeName(Scheme scheme, unsigned nPointers = 1);

/**
 * Cost @p scheme from an engine run.
 *
 * @param scheme Protocol to cost; must match the engine kind
 *        (engineKindFor) or the result is meaningless.
 * @param results Statistics from the matching engine.
 * @param bus Bus-cycle cost table.
 * @param opts Scheme parameters and sensitivity knobs.
 */
CostBreakdown computeCost(Scheme scheme,
                          const coherence::EngineResults &results,
                          const bus::BusCosts &bus,
                          const CostOptions &opts = CostOptions{});

} // namespace dirsim::sim

#endif // DIRSIM_SIM_COST_MODEL_HH
