/**
 * @file
 * Fused multi-scheme replay of prepared columns.
 *
 * The paper replays one interleaved reference stream through every
 * protocol (Section 4.1); the sweep matrix is therefore N engines ×
 * one stream per workload.  Replaying the engines one after another
 * re-reads the same SoA columns N times from memory.  FusedReplay
 * inverts the loop nest: it walks the columns once, in cache-sized
 * strips, and hands each strip to every engine in turn — the strip's
 * block/unit/typeFlags bytes stay L1/L2-resident across all N
 * engines, so the column bandwidth is paid once per workload instead
 * of once per scheme.
 *
 * Correctness rests on the PreparedSpanSource contract: engines are
 * stateful across spans and span boundaries are invisible to the
 * coherence model, so slicing a span into strips and interleaving the
 * engines per strip is bit-identical to N sequential full passes —
 * each engine still sees exactly the stream, in order.  The golden
 * digest suite pins this for every scheme × workload.
 *
 * Strip size trade-off: smaller strips keep the columns hotter but
 * pay the engine-switch overhead (virtual accessPrepared call,
 * block-table re-warm) more often; larger strips amortise the switch
 * but give up column locality once traces outgrow the LLC.  See
 * kDefaultReplayStripRefs for the measured default.
 */

#ifndef DIRSIM_SIM_FUSED_REPLAY_HH
#define DIRSIM_SIM_FUSED_REPLAY_HH

#include <cstdint>
#include <vector>

#include "coherence/engine.hh"
#include "trace/prepared.hh"

namespace dirsim::sim
{

/**
 * Default references per strip (SimConfig::replayStripRefs).
 *
 * 64K references is ~384 KiB of column data — LLC-resident, well
 * clear of L2.  Measured on the standard campaign, smaller
 * (L2-sized) strips lose: every engine switch refaults that engine's
 * hot block-table subset, and with quarter-size workloads whose
 * columns already fit in LLC the fusion win is the amortised walk,
 * not DRAM bandwidth.  64K strips sit within ~5% of whole-span
 * replay while keeping the strip path — the shape that matters once
 * traces outgrow the LLC — exercised by default everywhere.
 */
constexpr std::size_t kDefaultReplayStripRefs = 65536;

/** FusedReplay knobs. */
struct FusedReplayOptions
{
    /**
     * References per strip; every strip visits all engines before
     * the walk advances.  0 disables strip-mining: each span goes to
     * each engine whole (the pre-fusion replay shape, kept as the
     * A/B escape hatch).
     */
    std::size_t stripRefs = kDefaultReplayStripRefs;

    /**
     * Accumulate per-engine wall-clock seconds across the run (the
     * bench's per-scheme attribution).  Costs two clock reads per
     * engine per strip, so leave it off outside benchmarks.
     */
    bool timeEngines = false;
};

/** Outcome of one fused replay pass. */
struct FusedReplayRun
{
    std::uint64_t instrRefs = 0;
    std::uint64_t dataRefs = 0;
    std::uint64_t totalRefs() const { return instrRefs + dataRefs; }

    /** Seconds each engine spent consuming strips, in engine order;
     *  empty unless FusedReplayOptions::timeEngines. */
    std::vector<double> engineSeconds;
};

/**
 * Drives one prepared stream through a set of engines in a single
 * fused pass.  Performs no geometry validation — callers (Simulator,
 * the bench) check block size / domain / unit capacity before
 * replaying, exactly as before.
 */
class FusedReplay
{
  public:
    explicit FusedReplay(const FusedReplayOptions &opts = {})
        : _opts(opts)
    {
    }

    /**
     * Rewind @p spans and replay the whole stream through every
     * engine of @p engines: bulk instruction counts up front (order-
     * independent — they change no coherence state), then the span
     * walk, strip-mined per FusedReplayOptions::stripRefs.
     *
     * @throws std::runtime_error if the source yields a different
     *         number of data references than its summary declares.
     */
    FusedReplayRun
    run(trace::PreparedSpanSource &spans,
        const std::vector<coherence::CoherenceEngine *> &engines) const;

    const FusedReplayOptions &options() const { return _opts; }

  private:
    FusedReplayOptions _opts;
};

} // namespace dirsim::sim

#endif // DIRSIM_SIM_FUSED_REPLAY_HH
