/**
 * @file
 * Parallel sweep engine for protocol×workload×configuration runs.
 *
 * The paper's evaluation is embarrassingly parallel: every
 * (protocol engine, trace) pair is an independent state model run
 * (Section 4.1), so a full reproduction — four protocols × three
 * workloads × the sensitivity sweeps — fans out across threads with
 * no coupling at all.  A SweepPoint describes one such run: a factory
 * for the engines it owns and a factory for its reference source.
 * The source factory either replays a shared immutable MemoryTrace
 * (read-only, so zero-copy across threads) or regenerates a
 * deterministic WorkloadSource from its seed.
 *
 * Results are collected under a mutex and returned in submission
 * order, so a parallel sweep is bit-identical to running the same
 * points serially — the test suite holds SweepRunner to exactly that.
 */

#ifndef DIRSIM_SIM_SWEEP_HH
#define DIRSIM_SIM_SWEEP_HH

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "coherence/engine.hh"
#include "sim/simulator.hh"
#include "sim/thread_pool.hh"
#include "trace/ref_source.hh"

namespace dirsim::sim
{

/**
 * Run independent tasks on a ThreadPool and return their results in
 * submission order.
 *
 * This is the deterministic-collection core shared by SweepRunner and
 * timing::runTimedSweep: result slots are pre-sized so completion
 * order cannot reorder output, every write lands under one mutex, and
 * if tasks throw, the earliest-submitted failure is rethrown after
 * all tasks have completed.  @p Result must be default-constructible
 * and movable.
 *
 * @param jobs Worker threads as given to ThreadPool (0 = one per
 *             hardware thread).
 */
template <typename Result>
std::vector<Result>
runOrdered(unsigned jobs,
           const std::vector<std::function<Result()>> &tasks)
{
    std::vector<Result> results(tasks.size());
    std::vector<std::exception_ptr> errors(tasks.size());
    std::mutex collect;

    {
        ThreadPool pool(jobs);
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            pool.submit([&results, &errors, &collect, &tasks, i] {
                Result res{};
                std::exception_ptr error;
                try {
                    res = tasks[i]();
                } catch (...) {
                    error = std::current_exception();
                }
                std::lock_guard<std::mutex> lock(collect);
                results[i] = std::move(res);
                errors[i] = error;
            });
        }
        pool.wait();
    }

    for (const std::exception_ptr &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
    return results;
}

/** One independent simulation job in a sweep. */
struct SweepPoint
{
    std::string name; //!< Label carried through to the result.
    SimConfig sim;    //!< Driver configuration for this point.

    /**
     * Builds the engines this point runs.  Invoked on the worker
     * thread; the engines it returns are owned by the job and freed
     * when the job completes, so the factory must not hand out
     * engines shared with other points.
     */
    std::function<std::vector<std::unique_ptr<coherence::CoherenceEngine>>()>
        engines;

    /**
     * Builds the reference stream.  Invoked on the worker thread.
     * To share one trace across points, capture a `const MemoryTrace*`
     * and return a MemoryTraceSource over it — replay never mutates
     * the trace.  To regenerate instead, capture a WorkloadConfig and
     * return a WorkloadSource (deterministic from its seed).  Leave
     * unset when @ref prepared supplies the stream.
     */
    std::function<std::unique_ptr<trace::RefSource>()> source;

    /**
     * Already-decoded stream to replay instead of @ref source —
     * bit-identical results, no per-record decode (typically from
     * sim::TraceRepository, shared across every point of a sweep).
     * When both are set, the prepared trace wins.
     */
    std::shared_ptr<const trace::PreparedTrace> prepared;

    /**
     * Builds a PreparedSpanSource to replay instead of @ref prepared
     * or @ref source — the out-of-core path.  Invoked on the worker
     * thread: each job gets its own cursor (cursors carry mutable
     * window state), typically trace::StoredTrace::spanCursor() over
     * a store shared by every point.  Takes precedence over both
     * other stream fields.
     */
    std::function<std::unique_ptr<trace::PreparedSpanSource>()> spans;

    /**
     * Fusion group key.  Consecutive add()ed points carrying the same
     * non-empty key and an equal sim config run as ONE job: a single
     * Simulator owns every member's engines and replays the group's
     * stream once, fused (sim/fused_replay.hh) — the scheme axis of a
     * sweep collapses into one column pass per workload.  Results are
     * still one SweepPointResult per point, in submission order,
     * bit-identical to unfused execution (engines are independent
     * state models; strip interleaving is invisible to them).
     *
     * Contract: every point of a group must describe the same
     * reference stream — the runner replays the FIRST member's
     * stream for the whole group.  Empty key (the default) keeps the
     * point standalone.
     */
    std::string fuseKey;

    /**
     * Multi-configuration collapse hint.  Nonzero → this point's
     * engine is a plain DiriNB LimitedEngine (no directory cache)
     * with this pointer count over @ref multiUnits caches, and the
     * runner may run it as one lane of a shared
     * coherence::MultiLimitedEngine together with the other such
     * cells of its fusion group: one block-table probe per reference
     * serves every pointer count, results fanned back to their cells
     * (bit-identical to independent engines — the differential suite
     * holds it to that).  The @ref engines factory must still build
     * the equivalent independent engine; it is the fallback used
     * when the group ends up with fewer than two collapsible cells
     * or the unit counts disagree.  Zero (the default) always uses
     * the factory.
     */
    unsigned multiPointers = 0;
    /** Unit count for @ref multiPointers; required nonzero with it. */
    unsigned multiUnits = 0;
};

/** Outcome of one SweepPoint. */
struct SweepPointResult
{
    std::string name;
    std::uint64_t refs = 0; //!< References processed.
    /** One result per engine, in the factory's order. */
    std::vector<coherence::EngineResults> engines;
};

/**
 * Fans SweepPoints out across a thread pool.
 *
 * Usage: add() every point, then run() once.  Points execute on
 * worker threads (each job builds, runs and destroys its own engines
 * and source); results come back in submission order regardless of
 * completion order.  If any point throws, run() completes the
 * remaining points and rethrows the earliest-submitted failure.
 */
class SweepRunner
{
  public:
    /** @param jobs Worker threads; 0 = one per hardware thread. */
    explicit SweepRunner(unsigned jobs = 0);

    /** Queue a point; returns its index into run()'s result vector. */
    std::size_t add(SweepPoint point);

    /**
     * Run every queued point to completion.
     *
     * @return One SweepPointResult per add(), in submission order.
     */
    std::vector<SweepPointResult> run();

    /** Worker threads the runner will use. */
    unsigned jobs() const { return _jobs; }
    std::size_t numPoints() const { return _points.size(); }

    /**
     * Points per job as run() would fuse them, in submission order
     * (test/diagnostic hook: all-ones means no fusion will happen).
     */
    std::vector<std::size_t> plannedGroupSizes() const;

    /**
     * Per fusion group (same order as plannedGroupSizes()), the
     * number of points that will collapse into one shared
     * MultiLimitedEngine — 0 when the group runs every point's own
     * engine factory (fewer than two multiPointers cells, or
     * disagreeing multiUnits).
     */
    std::vector<std::size_t> plannedMultiLanes() const;

  private:
    unsigned _jobs;
    std::vector<SweepPoint> _points;
};

} // namespace dirsim::sim

#endif // DIRSIM_SIM_SWEEP_HH
