#include "sim/cost_model.hh"

#include <stdexcept>

namespace dirsim::sim
{

using coherence::EngineResults;
using coherence::Event;

namespace
{

/** Frequency helpers over one engine run. */
struct Freq
{
    explicit Freq(const EngineResults &results) : r(results)
    {
        refs = static_cast<double>(r.events.totalRefs());
    }

    double
    f(Event event) const
    {
        return refs == 0.0
                   ? 0.0
                   : static_cast<double>(r.events.count(event)) / refs;
    }

    double
    scale(std::uint64_t count) const
    {
        return refs == 0.0 ? 0.0
                           : static_cast<double>(count) / refs;
    }

    /** Chargeable (non-first-reference) read misses. */
    double
    rm() const
    {
        return f(Event::RmBlkCln) + f(Event::RmBlkDrty) +
               f(Event::RmMemory);
    }

    /** Chargeable write misses. */
    double
    wm() const
    {
        return f(Event::WmBlkCln) + f(Event::WmBlkDrty) +
               f(Event::WmMemory);
    }

    /** Misses that read main memory (block clean or uncached). */
    double
    missFromMemory() const
    {
        return f(Event::RmBlkCln) + f(Event::RmMemory) +
               f(Event::WmBlkCln) + f(Event::WmMemory);
    }

    /** Misses serviced by a dirty remote copy's write-back. */
    double
    missFromDirty() const
    {
        return f(Event::RmBlkDrty) + f(Event::WmBlkDrty);
    }

    /** Write hits to clean blocks (standalone directory checks). */
    double
    whCln() const
    {
        return f(Event::WhBlkClnExcl) + f(Event::WhBlkClnShared);
    }

    const EngineResults &r;
    double refs;
};

/**
 * Invalidation cycles for the pointer-based schemes: each event
 * invalidating k copies costs k directed cycles while k <= limit,
 * otherwise a broadcast at @p broadcastCost.  limit = UINT_MAX gives
 * pure sequential invalidation (DirnNB).
 */
double
pointerInvalCycles(const stats::Histogram &hist, unsigned limit,
                   double directedCost, double broadcastCost)
{
    double cycles = 0.0;
    for (std::size_t k = 0; k <= hist.maxValue(); ++k) {
        const auto count = static_cast<double>(hist.count(k));
        if (count == 0.0)
            continue;
        if (k <= limit)
            cycles += count * static_cast<double>(k) * directedCost;
        else
            cycles += count * broadcastCost;
    }
    return cycles;
}

} // namespace

EngineKind
engineKindFor(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Dir1NB:
      case Scheme::DirINB:
        return EngineKind::Limited;
      case Scheme::Dragon:
        return EngineKind::Dragon;
      default:
        return EngineKind::Inval;
    }
}

std::string
schemeName(Scheme scheme, unsigned nPointers)
{
    switch (scheme) {
      case Scheme::Dir1NB:
        return "Dir1NB";
      case Scheme::DirINB:
        return "Dir" + std::to_string(nPointers) + "NB";
      case Scheme::Dir0B:
        return "Dir0B";
      case Scheme::DirNNBSeq:
        return "DirnNB";
      case Scheme::DirIB:
        return "Dir" + std::to_string(nPointers) + "B";
      case Scheme::WTI:
        return "WTI";
      case Scheme::Dragon:
        return "Dragon";
      case Scheme::Berkeley:
        return "Berkeley";
      case Scheme::YenFu:
        return "Yen-Fu";
      case Scheme::BerkeleyOwn:
        return "Berkeley (own)";
      case Scheme::MESI:
        return "MESI";
    }
    return "?";
}

double
CostBreakdown::total() const
{
    return memAccess + cacheAccess + writeBack + writeWord + dirCheck +
           invalidate + overhead;
}

double
CostBreakdown::perTransaction() const
{
    return transactionsPerRef == 0.0 ? 0.0
                                     : total() / transactionsPerRef;
}

namespace
{

/** Scheme-specific charging; tail costs (replacement write-backs and
 *  q-overhead) are added by computeCost. */
CostBreakdown
computeCore(Scheme scheme, const EngineResults &results,
            const bus::BusCosts &bus, const CostOptions &opts)
{
    const Freq fr(results);
    CostBreakdown cost;
    cost.scheme = schemeName(scheme, opts.nPointers);
    cost.bus = bus.name;

    const double inv = bus.invalidate;

    switch (scheme) {
      case Scheme::Dir1NB:
      case Scheme::DirINB: {
        const unsigned i =
            scheme == Scheme::Dir1NB ? 1 : opts.nPointers;
        cost.memAccess = fr.missFromMemory() * bus.memoryAccess +
                         fr.missFromDirty() * bus.requestAddress;
        cost.writeBack = fr.missFromDirty() * bus.writeBack;
        // Directed invalidations: the dirty copy on a flush, every
        // clean copy on a write, and pointer displacements on fills.
        cost.invalidate =
            (fr.missFromDirty() +
             fr.scale(results.wmClnFanout.totalWeight()) +
             fr.scale(results.whClnFanout.totalWeight()) +
             fr.scale(results.displacementInvals)) *
            inv;
        // With a single pointer a cached block is exclusive by
        // construction, so write hits are free; with more pointers a
        // clean write hit must consult the directory.
        if (i >= 2)
            cost.dirCheck = fr.whCln() * bus.directoryCheck;
        cost.transactionsPerRef =
            fr.rm() + fr.wm() + (i >= 2 ? fr.whCln() : 0.0);
        break;
      }

      case Scheme::Dir0B: {
        cost.memAccess = fr.missFromMemory() * bus.memoryAccess +
                         fr.missFromDirty() * bus.requestAddress;
        cost.writeBack = fr.missFromDirty() * bus.writeBack;
        // Broadcast invalidates cost one bus cycle, like a single
        // invalidate (Section 4.3's simplifying assumption).  The
        // "clean in exactly one cache" state suppresses the broadcast
        // on exclusive write hits.
        cost.invalidate = (fr.f(Event::WmBlkCln) +
                           fr.f(Event::WmBlkDrty) +
                           fr.f(Event::WhBlkClnShared)) *
                          inv;
        cost.dirCheck = fr.whCln() * bus.directoryCheck;
        cost.transactionsPerRef = fr.rm() + fr.wm() + fr.whCln();
        break;
      }

      case Scheme::DirNNBSeq: {
        cost.memAccess = fr.missFromMemory() * bus.memoryAccess +
                         fr.missFromDirty() * bus.requestAddress;
        cost.writeBack = fr.missFromDirty() * bus.writeBack;
        // One directed message per actual copy.
        cost.invalidate =
            (fr.scale(results.whClnFanout.totalWeight()) +
             fr.scale(results.wmClnFanout.totalWeight()) +
             fr.f(Event::WmBlkDrty)) *
            inv;
        cost.dirCheck = fr.whCln() * bus.directoryCheck;
        cost.transactionsPerRef = fr.rm() + fr.wm() + fr.whCln();
        break;
      }

      case Scheme::DirIB: {
        cost.memAccess = fr.missFromMemory() * bus.memoryAccess +
                         fr.missFromDirty() * bus.requestAddress;
        cost.writeBack = fr.missFromDirty() * bus.writeBack;
        // Directed while the pointers suffice; broadcast (b cycles)
        // once the copy count exceeded i.
        const double directed_cycles =
            pointerInvalCycles(results.whClnFanout, opts.nPointers,
                               inv, opts.broadcastCost) +
            pointerInvalCycles(results.wmClnFanout, opts.nPointers,
                               inv, opts.broadcastCost);
        cost.invalidate =
            (fr.refs == 0.0 ? 0.0 : directed_cycles / fr.refs) +
            fr.f(Event::WmBlkDrty) * inv;
        cost.dirCheck = fr.whCln() * bus.directoryCheck;
        cost.transactionsPerRef = fr.rm() + fr.wm() + fr.whCln();
        break;
      }

      case Scheme::WTI: {
        // Write-through keeps memory current: every miss is serviced
        // by memory and every write crosses the bus; snooping does the
        // invalidation for free.
        const double writes =
            fr.scale(results.events.writes());
        cost.memAccess = (fr.rm() + fr.wm()) * bus.memoryAccess;
        cost.writeWord = writes * bus.writeWord;
        cost.transactionsPerRef = fr.rm() + fr.wm() + writes;
        break;
      }

      case Scheme::Dragon: {
        cost.memAccess = fr.missFromMemory() * bus.memoryAccess;
        cost.cacheAccess = fr.missFromDirty() * bus.cacheAccess;
        cost.writeWord = (fr.f(Event::WhDistrib) +
                          fr.f(Event::WmBlkCln) +
                          fr.f(Event::WmBlkDrty)) *
                         bus.writeWord;
        cost.transactionsPerRef =
            fr.rm() + fr.wm() + fr.f(Event::WhDistrib);
        break;
      }

      case Scheme::Berkeley: {
        // Dir0B with the directory probe priced at zero: the block's
        // cached state already says whether an invalidation is needed.
        cost = computeCore(Scheme::Dir0B, results, bus, opts);
        cost.scheme = schemeName(scheme, opts.nPointers);
        cost.dirCheck = 0.0;
        // Exclusive clean write hits no longer touch the bus at all.
        cost.transactionsPerRef = fr.rm() + fr.wm() +
                                  fr.f(Event::WhBlkClnShared);
        break;
      }

      case Scheme::YenFu: {
        cost = computeCore(Scheme::Dir0B, results, bus, opts);
        cost.scheme = schemeName(scheme, opts.nPointers);
        // The single bit answers the exclusive-clean case locally...
        cost.dirCheck =
            fr.f(Event::WhBlkClnShared) * bus.directoryCheck;
        // ...but keeping single bits current costs a bus word per
        // 1 -> 2 holder transition.
        cost.writeWord += fr.scale(results.holderGrowth12) *
                          bus.writeWord;
        cost.transactionsPerRef = fr.rm() + fr.wm() +
                                  fr.f(Event::WhBlkClnShared) +
                                  fr.scale(results.holderGrowth12);
        break;
      }

      case Scheme::BerkeleyOwn: {
        // Misses to cached blocks are supplied by the owning/holding
        // cache; memory is read only when no cache has a copy.
        cost.memAccess = (fr.f(Event::RmMemory) +
                          fr.f(Event::WmMemory) +
                          fr.f(Event::RmBlkCln) +
                          fr.f(Event::WmBlkCln)) *
                         bus.memoryAccess;
        cost.cacheAccess = fr.missFromDirty() * bus.cacheAccess;
        // Any write to a block with possible other copies broadcasts
        // one invalidate; the cache's own state replaces the
        // directory probe.
        cost.invalidate = (fr.whCln() + fr.f(Event::WmBlkCln) +
                           fr.f(Event::WmBlkDrty)) *
                          inv;
        cost.transactionsPerRef = fr.rm() + fr.wm() + fr.whCln();
        break;
      }

      case Scheme::MESI: {
        // Illinois: cache-to-cache supply whenever a copy exists; a
        // dirty supply also updates memory (flush + snarf).
        cost.memAccess = (fr.f(Event::RmMemory) +
                          fr.f(Event::WmMemory)) *
                             bus.memoryAccess +
                         fr.missFromDirty() * bus.requestAddress;
        cost.cacheAccess = (fr.f(Event::RmBlkCln) +
                            fr.f(Event::WmBlkCln)) *
                           bus.cacheAccess;
        cost.writeBack = fr.missFromDirty() * bus.writeBack;
        // The exclusive-clean state makes exclusive write hits
        // silent; shared write hits broadcast one invalidate.
        cost.invalidate = (fr.f(Event::WhBlkClnShared) +
                           fr.f(Event::WmBlkCln) +
                           fr.f(Event::WmBlkDrty)) *
                          inv;
        cost.transactionsPerRef =
            fr.rm() + fr.wm() + fr.f(Event::WhBlkClnShared);
        break;
      }
    }

    return cost;
}

} // namespace

CostBreakdown
computeCost(Scheme scheme, const EngineResults &results,
            const bus::BusCosts &bus, const CostOptions &opts)
{
    const Freq fr(results);
    CostBreakdown cost = computeCore(scheme, results, bus, opts);

    // Finite-cache extension: replacement write-backs use the bus.
    cost.writeBack +=
        fr.scale(results.replacementWriteBacks) * bus.writeBack;

    // Finite directory cache: replacing an entry force-invalidates
    // every copy of the victim block and flushes a dirty victim.
    cost.invalidate +=
        fr.scale(results.dirCacheEvictionInvals) * bus.invalidate;
    cost.writeBack +=
        fr.scale(results.dirCacheEvictionWriteBacks) * bus.writeBack;

    cost.overhead = cost.transactionsPerRef * opts.overheadQ;
    return cost;
}

} // namespace dirsim::sim
