/**
 * @file
 * Sharing-unit identification, shared by every trace consumer.
 *
 * A trace record carries both a process id and a CPU id; which one
 * names a "cache" is the Section 4.4 sharing-domain choice.  The
 * UnitMapper turns the chosen identifier into a dense unit index in
 * first-seen order.  sim::Simulator and timing::TimedBusSim used to
 * each keep their own ad-hoc map; centralising it here guarantees
 * the two subsystems agree on the unit numbering (the timed runs are
 * compared against the untimed engine results, so a numbering skew
 * would silently decouple them).
 */

#ifndef DIRSIM_SIM_UNIT_MAP_HH
#define DIRSIM_SIM_UNIT_MAP_HH

#include <cstdint>
#include <vector>

#include "trace/record.hh"

namespace dirsim::sim
{

/** Which identifier defines a "cache" for sharing purposes. */
enum class SharingDomain
{
    Process,  //!< One cache per process (the paper's default).
    Processor,//!< One cache per CPU.
};

/** The record field the domain selects. */
inline unsigned
unitKey(const trace::TraceRecord &rec, SharingDomain domain)
{
    return domain == SharingDomain::Process ? rec.pid : rec.cpu;
}

/**
 * First-seen-order dense numbering of sharing units.
 *
 * Keys are TraceRecord pids (16 bits) or CPU ids (8 bits), so the
 * whole key space fits a direct-index table: map() is one bounds
 * check and one load — no hashing at all, which matters because it
 * runs once per trace record.  The table grows lazily to the largest
 * key seen (≤ 256 KiB even for a trace using every possible pid).
 */
class UnitMapper
{
  public:
    explicit UnitMapper(SharingDomain domain) : _domain(domain) {}

    /** Dense unit index of @p rec's process/CPU, assigning the next
     *  free index on first sight. */
    unsigned
    map(const trace::TraceRecord &rec)
    {
        const unsigned key = unitKey(rec, _domain);
        if (key >= _units.size())
            _units.resize(key + 1, -1);
        std::int32_t &unit = _units[key];
        if (unit < 0)
            unit = static_cast<std::int32_t>(_seen++);
        return static_cast<unsigned>(unit);
    }

    /** Distinct units seen so far. */
    unsigned size() const { return _seen; }

    void
    clear()
    {
        _units.clear();
        _seen = 0;
    }

  private:
    SharingDomain _domain;
    /** key -> dense unit index, -1 when unseen. */
    std::vector<std::int32_t> _units;
    unsigned _seen = 0;
};

} // namespace dirsim::sim

#endif // DIRSIM_SIM_UNIT_MAP_HH
