#include "sim/thread_pool.hh"

#include <cstdio>
#include <cstdlib>
#include <exception>

namespace dirsim::sim
{

namespace
{

/**
 * Run a task at the worker boundary.  Tasks must not throw (see the
 * contract in thread_pool.hh); if one does, an unwinding exception
 * would cross the std::thread boundary and std::terminate with no
 * context, so report what escaped and abort deliberately.
 */
void
runGuarded(const std::function<void()> &task)
{
    try {
        task();
    } catch (const std::exception &e) {
        std::fprintf(stderr,
                     "dirsim::sim::ThreadPool: task threw '%s'; tasks "
                     "must not throw (see src/sim/thread_pool.hh) — "
                     "wrap work and capture exceptions as "
                     "sim::runOrdered does\n",
                     e.what());
        std::abort();
    } catch (...) {
        std::fprintf(stderr,
                     "dirsim::sim::ThreadPool: task threw a "
                     "non-std::exception; tasks must not throw (see "
                     "src/sim/thread_pool.hh) — wrap work and capture "
                     "exceptions as sim::runOrdered does\n");
        std::abort();
    }
}

} // namespace

unsigned
ThreadPool::resolveThreads(unsigned nThreads)
{
    if (nThreads != 0)
        return nThreads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned nThreads)
{
    const unsigned n = resolveThreads(nThreads);
    _workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stopping = true;
    }
    _taskReady.notify_all();
    for (std::thread &worker : _workers)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _queue.push_back(std::move(task));
    }
    _taskReady.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(_mutex);
    _allIdle.wait(lock,
                  [this] { return _queue.empty() && _active == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _taskReady.wait(lock, [this] {
                return _stopping || !_queue.empty();
            });
            if (_queue.empty())
                return; // _stopping and nothing left to drain.
            task = std::move(_queue.front());
            _queue.pop_front();
            ++_active;
        }
        runGuarded(task);
        {
            std::lock_guard<std::mutex> lock(_mutex);
            --_active;
            if (_queue.empty() && _active == 0)
                _allIdle.notify_all();
        }
    }
}

} // namespace dirsim::sim
