/**
 * @file
 * Minimal fixed-size thread pool for the sweep engine.
 *
 * Workers pull std::function tasks from a mutex-guarded FIFO queue.
 * The pool supports one pattern well — submit a batch of independent
 * jobs, then wait for all of them — which is exactly what a
 * protocol×workload sweep needs.  Tasks must not throw; callers wrap
 * their work and capture exceptions themselves (runOrdered does).  A
 * task that does throw is a contract violation: the worker reports
 * the exception's message to stderr and aborts the process, rather
 * than letting std::thread's default std::terminate hide what
 * happened.
 */

#ifndef DIRSIM_SIM_THREAD_POOL_HH
#define DIRSIM_SIM_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dirsim::sim
{

/** Fixed set of worker threads draining a task queue. */
class ThreadPool
{
  public:
    /**
     * @param nThreads Worker count; 0 means one per hardware thread
     *        (at least one).
     */
    explicit ThreadPool(unsigned nThreads = 0);

    /** Waits for queued tasks to finish, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task for execution on some worker. */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and no task is running. */
    void wait();

    unsigned numThreads() const
    {
        return static_cast<unsigned>(_workers.size());
    }

    /** nThreads resolved the way the constructor resolves it. */
    static unsigned resolveThreads(unsigned nThreads);

  private:
    void workerLoop();

    std::mutex _mutex;
    std::condition_variable _taskReady; //!< Signals workers.
    std::condition_variable _allIdle;   //!< Signals wait().
    std::deque<std::function<void()>> _queue;
    std::vector<std::thread> _workers;
    std::size_t _active = 0; //!< Tasks currently executing.
    bool _stopping = false;
};

} // namespace dirsim::sim

#endif // DIRSIM_SIM_THREAD_POOL_HH
