/**
 * @file
 * Compatibility shim: ThreadPool moved to util/thread_pool.hh so the
 * gen layer's direct-to-prepared pipeline can fan packing work out
 * without a gen→sim dependency cycle.  The sweep engine and its
 * callers keep naming sim::ThreadPool.
 */

#ifndef DIRSIM_SIM_THREAD_POOL_HH
#define DIRSIM_SIM_THREAD_POOL_HH

#include "util/thread_pool.hh"

namespace dirsim::sim
{

using util::ThreadPool;

} // namespace dirsim::sim

#endif // DIRSIM_SIM_THREAD_POOL_HH
