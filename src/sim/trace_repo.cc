#include "sim/trace_repo.hh"

#include <bit>
#include <cstdio>
#include <vector>

#include "sim/thread_pool.hh"

namespace dirsim::sim
{

namespace
{

/** Positional serialiser for cacheKey(): fixed-width fields, no
 *  separators needed except around the variable-length name. */
class KeyWriter
{
  public:
    void
    str(const std::string &s)
    {
        u64(s.size());
        _key += s;
    }

    void
    u64(std::uint64_t v)
    {
        char buf[17];
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(v));
        _key += buf;
    }

    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    std::string take() { return std::move(_key); }

  private:
    std::string _key;
};

} // namespace

// Tripwire: cacheKey() serialises every field positionally.  If one
// of these structs grows a field, the key must learn it — otherwise
// two differing configs could silently share a cache entry.  Update
// cacheKey() first, then these sizes.
static_assert(sizeof(gen::AddressSpaceConfig) == 80,
              "AddressSpaceConfig changed: update cacheKey()");
static_assert(sizeof(gen::BehaviorConfig) == 160,
              "BehaviorConfig changed: update cacheKey()");
static_assert(sizeof(trace::PrepareOptions) == 12,
              "PrepareOptions changed: update cacheKey()");

std::string
TraceRepository::cacheKey(const gen::WorkloadConfig &cfg,
                          const trace::PrepareOptions &opts)
{
    KeyWriter key;
    key.str(cfg.name);
    key.u64(cfg.totalRefs);
    key.u64(cfg.seed);
    key.u64(cfg.quantumRefs);
    key.f64(cfg.migrationRate);

    const gen::AddressSpaceConfig &sp = cfg.space;
    key.u64(sp.nProcesses);
    key.u64(sp.nCpus);
    key.u64(sp.blockBytes);
    key.u64(sp.wordBytes);
    key.u64(sp.codeBlocksPerProc);
    key.u64(sp.privateBlocksPerProc);
    key.u64(sp.privateHotBlocks);
    key.f64(sp.privateHotFrac);
    key.u64(sp.sharedReadBlocks);
    key.u64(sp.sharedWriteBlocks);
    key.u64(sp.migratoryObjects);
    key.u64(sp.blocksPerMigratoryObject);
    key.u64(sp.nLocks);
    key.u64(sp.protectedBlocksPerLock);
    key.u64(sp.osCodeBlocks);
    key.u64(sp.osSharedBlocks);
    key.u64(sp.osPerCpuBlocks);
    key.u64(sp.falseSharingLocks);

    const gen::BehaviorConfig &bh = cfg.behavior;
    key.f64(bh.pInstr);
    key.f64(bh.pSystem);
    key.f64(bh.wPrivate);
    key.f64(bh.wSharedRead);
    key.f64(bh.wSharedWrite);
    key.f64(bh.wMigratory);
    key.f64(bh.wLockAttempt);
    key.f64(bh.pPrivateRead);
    key.f64(bh.pSharedReadWrite);
    key.f64(bh.pSharedSlotWrite);
    key.u64(bh.migratoryWriteBurst);
    key.f64(bh.pSpinInstr);
    key.u64(bh.critMin);
    key.u64(bh.critMax);
    key.f64(bh.pCritProtected);
    key.f64(bh.pCritWrite);
    key.f64(bh.hotLockFrac);
    key.u64(bh.nHotLocks);
    key.f64(bh.pOsInstr);
    key.f64(bh.pOsShared);
    key.f64(bh.pOsWrite);

    key.u64(opts.blockBytes);
    key.u64(static_cast<std::uint64_t>(opts.domain));
    key.u64(opts.dropLockTests);
    key.u64(opts.timedStreams);
    return key.take();
}

TraceRepository::TraceRepository(unsigned jobs, std::size_t maxBytes)
    : _jobs(ThreadPool::resolveThreads(jobs)), _maxBytes(maxBytes)
{
}

TraceRepository::Ptr
TraceRepository::build(const gen::WorkloadConfig &cfg,
                       const trace::PrepareOptions &opts) const
{
    // Generation is serial by design: the reference interleaving is a
    // pure function of one RNG stream and the shared lock state.
    const trace::MemoryTrace raw = gen::generateTrace(cfg);

    // The decode parallelises: the builder's planning scan froze all
    // write offsets, so chunks land in disjoint ranges whatever order
    // the workers run them in.
    trace::PreparedTraceBuilder builder(raw, opts);
    const std::size_t chunks = builder.numChunks();
    if (_jobs > 1 && chunks > 1) {
        ThreadPool pool(_jobs);
        for (std::size_t c = 0; c < chunks; ++c)
            pool.submit([&builder, c] { builder.decodeChunk(c); });
        pool.wait();
    } else {
        for (std::size_t c = 0; c < chunks; ++c)
            builder.decodeChunk(c);
    }
    return std::make_shared<const trace::PreparedTrace>(
        builder.finish());
}

std::shared_ptr<const trace::PreparedTrace>
TraceRepository::get(const gen::WorkloadConfig &cfg,
                     const trace::PrepareOptions &opts)
{
    const std::string key = cacheKey(cfg, opts);

    std::shared_future<Ptr> future;
    std::shared_ptr<std::promise<Ptr>> toBuild;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        auto it = _entries.find(key);
        if (it == _entries.end()) {
            Entry entry;
            entry.promise = std::make_shared<std::promise<Ptr>>();
            entry.future = entry.promise->get_future().share();
            toBuild = entry.promise;
            it = _entries.emplace(key, std::move(entry)).first;
        }
        it->second.lastUse = ++_tick;
        future = it->second.future;
    }

    if (toBuild) {
        _buildCount.fetch_add(1, std::memory_order_relaxed);
        try {
            Ptr ptr = build(cfg, opts);
            {
                std::lock_guard<std::mutex> lock(_mutex);
                auto it = _entries.find(key);
                if (it != _entries.end()) {
                    it->second.bytes = ptr->byteSize();
                    it->second.ready = true;
                }
            }
            toBuild->set_value(std::move(ptr));
            std::lock_guard<std::mutex> lock(_mutex);
            evictLocked();
        } catch (...) {
            // Failures propagate to every waiter but are not cached:
            // a later get() may retry.
            toBuild->set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(_mutex);
            _entries.erase(key);
        }
    }
    return future.get();
}

void
TraceRepository::evictLocked()
{
    std::size_t readyBytes = 0;
    std::size_t readyCount = 0;
    for (const auto &[key, entry] : _entries) {
        if (entry.ready) {
            readyBytes += entry.bytes;
            ++readyCount;
        }
    }
    // Keep at least the most recently used entry even when a single
    // trace exceeds the budget — evicting it would just rebuild it.
    while (readyBytes > _maxBytes && readyCount > 1) {
        auto victim = _entries.end();
        for (auto it = _entries.begin(); it != _entries.end(); ++it) {
            if (!it->second.ready)
                continue;
            if (victim == _entries.end() ||
                it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        readyBytes -= victim->second.bytes;
        --readyCount;
        _entries.erase(victim);
    }
}

void
TraceRepository::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _entries.clear();
}

std::size_t
TraceRepository::size() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _entries.size();
}

TraceRepository &
TraceRepository::global()
{
    static TraceRepository repo;
    return repo;
}

} // namespace dirsim::sim
