#include "sim/trace_repo.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <vector>

#include "sim/thread_pool.hh"
#include "util/hash.hh"

namespace dirsim::sim
{

namespace
{

/** Distinct hash seeds for the cache filename and the in-file
 *  fingerprint: a 64-bit filename collision between two keys is then
 *  caught by the fingerprint check (the pair collides with
 *  probability ~2^-128, not ~2^-64). */
constexpr std::uint64_t kNameSeed = 0x66696c656e616d65ULL;
constexpr std::uint64_t kPrintSeed = 0x66696e676572ULL;

std::uint64_t
hashKey(const std::string &key, std::uint64_t seed)
{
    return util::StreamHash64::of(key.data(), key.size(), seed);
}

/** Positional serialiser for cacheKey(): fixed-width fields, no
 *  separators needed except around the variable-length name. */
class KeyWriter
{
  public:
    void
    str(const std::string &s)
    {
        u64(s.size());
        _key += s;
    }

    void
    u64(std::uint64_t v)
    {
        char buf[17];
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(v));
        _key += buf;
    }

    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    std::string take() { return std::move(_key); }

  private:
    std::string _key;
};

} // namespace

// Tripwire: cacheKey() serialises every field positionally.  If one
// of these structs grows a field, the key must learn it — otherwise
// two differing configs could silently share a cache entry.  Update
// cacheKey() first, then these sizes.
static_assert(sizeof(gen::AddressSpaceConfig) == 80,
              "AddressSpaceConfig changed: update cacheKey()");
static_assert(sizeof(gen::BehaviorConfig) == 160,
              "BehaviorConfig changed: update cacheKey()");
static_assert(sizeof(trace::PrepareOptions) == 12,
              "PrepareOptions changed: update cacheKey()");

std::string
TraceRepository::cacheKey(const gen::WorkloadConfig &cfg,
                          const trace::PrepareOptions &opts)
{
    KeyWriter key;
    key.str(cfg.name);
    key.u64(cfg.totalRefs);
    key.u64(cfg.seed);
    key.u64(cfg.quantumRefs);
    key.f64(cfg.migrationRate);

    const gen::AddressSpaceConfig &sp = cfg.space;
    key.u64(sp.nProcesses);
    key.u64(sp.nCpus);
    key.u64(sp.blockBytes);
    key.u64(sp.wordBytes);
    key.u64(sp.codeBlocksPerProc);
    key.u64(sp.privateBlocksPerProc);
    key.u64(sp.privateHotBlocks);
    key.f64(sp.privateHotFrac);
    key.u64(sp.sharedReadBlocks);
    key.u64(sp.sharedWriteBlocks);
    key.u64(sp.migratoryObjects);
    key.u64(sp.blocksPerMigratoryObject);
    key.u64(sp.nLocks);
    key.u64(sp.protectedBlocksPerLock);
    key.u64(sp.osCodeBlocks);
    key.u64(sp.osSharedBlocks);
    key.u64(sp.osPerCpuBlocks);
    key.u64(sp.falseSharingLocks);

    const gen::BehaviorConfig &bh = cfg.behavior;
    key.f64(bh.pInstr);
    key.f64(bh.pSystem);
    key.f64(bh.wPrivate);
    key.f64(bh.wSharedRead);
    key.f64(bh.wSharedWrite);
    key.f64(bh.wMigratory);
    key.f64(bh.wLockAttempt);
    key.f64(bh.pPrivateRead);
    key.f64(bh.pSharedReadWrite);
    key.f64(bh.pSharedSlotWrite);
    key.u64(bh.migratoryWriteBurst);
    key.f64(bh.pSpinInstr);
    key.u64(bh.critMin);
    key.u64(bh.critMax);
    key.f64(bh.pCritProtected);
    key.f64(bh.pCritWrite);
    key.f64(bh.hotLockFrac);
    key.u64(bh.nHotLocks);
    key.f64(bh.pOsInstr);
    key.f64(bh.pOsShared);
    key.f64(bh.pOsWrite);

    key.u64(opts.blockBytes);
    key.u64(static_cast<std::uint64_t>(opts.domain));
    key.u64(opts.dropLockTests);
    key.u64(opts.timedStreams);
    return key.take();
}

std::string
RepoStats::summary() const
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "repo: %llu hits, %llu misses, %llu builds, %llu disk hits, "
        "%llu disk writes, %llu evictions, %llu disk evictions",
        static_cast<unsigned long long>(hits),
        static_cast<unsigned long long>(misses),
        static_cast<unsigned long long>(builds),
        static_cast<unsigned long long>(diskHits),
        static_cast<unsigned long long>(diskWrites),
        static_cast<unsigned long long>(evictions),
        static_cast<unsigned long long>(diskEvictions));
    return buf;
}

TraceRepository::TraceRepository(unsigned jobs, std::size_t maxBytes)
    : _jobs(ThreadPool::resolveThreads(jobs)), _maxBytes(maxBytes)
{
}

void
TraceRepository::setDiskCache(const DiskCacheConfig &cfg)
{
    if (!cfg.dir.empty())
        std::filesystem::create_directories(cfg.dir);
    std::lock_guard<std::mutex> lock(_mutex);
    _disk = cfg;
}

bool
TraceRepository::diskCacheEnabled() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return !_disk.dir.empty();
}

void
TraceRepository::setDirectGen(bool enabled)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _directGen = enabled;
}

bool
TraceRepository::directGenEnabled() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _directGen;
}

void
TraceRepository::setDirectGenChunkRefs(std::uint64_t chunkRefs)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _directCfg.chunkRefs = chunkRefs > 0 ? chunkRefs : 1;
}

RepoStats
TraceRepository::stats() const
{
    RepoStats s;
    s.hits = _hits.load(std::memory_order_relaxed);
    s.misses = _misses.load(std::memory_order_relaxed);
    s.builds = _buildCount.load(std::memory_order_relaxed);
    s.diskHits = _diskHits.load(std::memory_order_relaxed);
    s.diskWrites = _diskWrites.load(std::memory_order_relaxed);
    s.evictions = _evictions.load(std::memory_order_relaxed);
    s.diskEvictions = _diskEvictions.load(std::memory_order_relaxed);
    return s;
}

std::string
TraceRepository::diskPathFor(const std::string &key) const
{
    char name[64];
    std::snprintf(name, sizeof(name), "tr-%016llx-v%u.dspt",
                  static_cast<unsigned long long>(
                      hashKey(key, kNameSeed)),
                  trace::kStoreFormatVersion);
    std::string dir;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        dir = _disk.dir;
    }
    return (std::filesystem::path(dir) / name).string();
}

TraceRepository::StoredPtr
TraceRepository::openDiskEntry(const std::string &key,
                               const trace::PrepareOptions &opts)
{
    const std::string path = diskPathFor(key);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec))
        return nullptr;
    StoredPtr stored;
    try {
        stored = trace::StoredTrace::open(path);
    } catch (const std::exception &) {
        // Torn write from a crashed process, or an old format: drop
        // the file and rebuild.
        ::unlink(path.c_str());
        return nullptr;
    }
    // A filename collision between distinct keys, or a stale file
    // whose options drifted: a detected miss, not an error.  Leave
    // the file alone — the other key still owns it.
    if (stored->configFingerprint() != hashKey(key, kPrintSeed) ||
        !(stored->options() == opts))
        return nullptr;
    // Touch: the disk tier's LRU clock must advance on hits even on
    // relatime/noatime mounts.
    ::utimensat(AT_FDCWD, path.c_str(), nullptr, 0);
    return stored;
}

void
TraceRepository::spillToDisk(const std::string &key,
                             const trace::PreparedTrace &prepared)
{
    const std::string path = diskPathFor(key);
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    trace::StoreWriteOptions store;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        store.chunkRefs = _disk.chunkRefs;
    }
    store.configFingerprint = hashKey(key, kPrintSeed);
    try {
        trace::writeStored(prepared, tmp, store);
        if (::rename(tmp.c_str(), path.c_str()) != 0) {
            ::unlink(tmp.c_str());
            return;
        }
    } catch (const std::exception &) {
        // A full or read-only cache directory degrades the disk tier
        // to a no-op; the in-memory result is unaffected.
        return;
    }
    _diskWrites.fetch_add(1, std::memory_order_relaxed);
    evictDisk(path);
}

void
TraceRepository::evictDisk(const std::string &spare)
{
    DiskCacheConfig disk;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        disk = _disk;
    }
    if (disk.dir.empty())
        return;

    struct File
    {
        std::string path;
        std::uint64_t bytes;
        // atime with nanoseconds: the LRU ordering key.
        std::pair<std::int64_t, std::int64_t> atime;
    };
    std::vector<File> files;
    std::uint64_t total = 0;
    std::error_code ec;
    for (const auto &de :
         std::filesystem::directory_iterator(disk.dir, ec)) {
        const std::string name = de.path().filename().string();
        if (name.rfind("tr-", 0) != 0 ||
            name.find(".dspt") == std::string::npos ||
            name.find(".tmp.") != std::string::npos)
            continue;
        struct stat st{};
        if (::stat(de.path().c_str(), &st) != 0)
            continue;
        files.push_back(File{de.path().string(),
                             std::uint64_t(st.st_size),
                             {st.st_atim.tv_sec, st.st_atim.tv_nsec}});
        total += std::uint64_t(st.st_size);
    }
    if (total <= disk.budgetBytes || files.size() <= 1)
        return;
    std::sort(files.begin(), files.end(),
              [](const File &a, const File &b) {
                  return a.atime < b.atime;
              });
    // Keep at least one file: the one the caller just wrote
    // (@p spare) when there is one, the most recently used otherwise.
    // The spare is never a victim — freshly created timestamps can be
    // *coarser* than a recently refreshed atime on multigrain-
    // timestamp kernels, so the newest file is not guaranteed to sort
    // newest.
    const bool spareListed =
        std::any_of(files.begin(), files.end(), [&spare](const File &f) {
            return f.path == spare;
        });
    for (std::size_t i = 0;
         total > disk.budgetBytes && i < files.size(); ++i) {
        if (files[i].path == spare)
            continue;
        if (!spareListed && i + 1 == files.size())
            break;
        if (::unlink(files[i].path.c_str()) == 0) {
            total -= files[i].bytes;
            _diskEvictions.fetch_add(1, std::memory_order_relaxed);
        }
    }
}

TraceRepository::Ptr
TraceRepository::build(const gen::WorkloadConfig &cfg,
                       const trace::PrepareOptions &opts) const
{
    bool direct;
    gen::DirectGenConfig dg;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        direct = _directGen;
        dg = _directCfg;
    }
    if (direct && !opts.timedStreams) {
        // Single-pass cold path: generate straight into the prepared
        // columns, with per-chunk packing overlapped on a pool
        // worker.  Bit-identical to the legacy path below — the
        // differential suite and the golden digests enforce it.
        return std::make_shared<const trace::PreparedTrace>(
            gen::generatePrepared(cfg, opts, dg));
    }

    // Generation is serial by design: the reference interleaving is a
    // pure function of one RNG stream and the shared lock state.
    const trace::MemoryTrace raw = gen::generateTrace(cfg);

    // The decode parallelises: the builder's planning scan froze all
    // write offsets, so chunks land in disjoint ranges whatever order
    // the workers run them in.
    trace::PreparedTraceBuilder builder(raw, opts);
    const std::size_t chunks = builder.numChunks();
    if (_jobs > 1 && chunks > 1) {
        ThreadPool pool(_jobs);
        for (std::size_t c = 0; c < chunks; ++c)
            pool.submit([&builder, c] { builder.decodeChunk(c); });
        pool.wait();
    } else {
        for (std::size_t c = 0; c < chunks; ++c)
            builder.decodeChunk(c);
    }
    return std::make_shared<const trace::PreparedTrace>(
        builder.finish());
}

std::shared_ptr<const trace::PreparedTrace>
TraceRepository::get(const gen::WorkloadConfig &cfg,
                     const trace::PrepareOptions &opts)
{
    const std::string key = cacheKey(cfg, opts);

    std::shared_future<Ptr> future;
    std::shared_ptr<std::promise<Ptr>> toBuild;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        auto it = _entries.find(key);
        if (it == _entries.end()) {
            Entry entry;
            entry.promise = std::make_shared<std::promise<Ptr>>();
            entry.future = entry.promise->get_future().share();
            toBuild = entry.promise;
            it = _entries.emplace(key, std::move(entry)).first;
            _misses.fetch_add(1, std::memory_order_relaxed);
        } else {
            _hits.fetch_add(1, std::memory_order_relaxed);
        }
        it->second.lastUse = ++_tick;
        future = it->second.future;
    }

    if (toBuild) {
        try {
            Ptr ptr;
            // Second tier first: a warm cache file is a sequential
            // digest-checked read-back, not a re-generate + re-decode.
            if (diskCacheEnabled()) {
                if (StoredPtr stored = openDiskEntry(key, opts)) {
                    try {
                        ptr = std::make_shared<
                            const trace::PreparedTrace>(
                            stored->loadAll());
                        _diskHits.fetch_add(1,
                                            std::memory_order_relaxed);
                    } catch (const std::exception &) {
                        // Chunk payload corruption surfaces here (the
                        // open only validated header + table): drop
                        // the file and rebuild from scratch.
                        ::unlink(stored->path().c_str());
                        ptr = nullptr;
                    }
                }
            }
            if (!ptr) {
                _buildCount.fetch_add(1, std::memory_order_relaxed);
                ptr = build(cfg, opts);
                if (diskCacheEnabled())
                    spillToDisk(key, *ptr);
            }
            {
                std::lock_guard<std::mutex> lock(_mutex);
                auto it = _entries.find(key);
                if (it != _entries.end()) {
                    it->second.bytes = ptr->byteSize();
                    it->second.ready = true;
                }
            }
            toBuild->set_value(std::move(ptr));
            std::lock_guard<std::mutex> lock(_mutex);
            evictLocked();
        } catch (...) {
            // Failures propagate to every waiter but are not cached:
            // a later get() may retry.
            toBuild->set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(_mutex);
            _entries.erase(key);
        }
    }
    return future.get();
}

std::shared_ptr<const trace::StoredTrace>
TraceRepository::getStored(const gen::WorkloadConfig &cfg,
                           const trace::PrepareOptions &opts)
{
    if (!diskCacheEnabled())
        throw std::logic_error(
            "TraceRepository: getStored() requires a configured disk "
            "cache (setDiskCache)");
    const std::string key = cacheKey(cfg, opts);

    std::shared_future<StoredPtr> future;
    std::shared_ptr<std::promise<StoredPtr>> toBuild;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        auto it = _stored.find(key);
        if (it == _stored.end()) {
            StoredEntry entry;
            entry.promise =
                std::make_shared<std::promise<StoredPtr>>();
            entry.future = entry.promise->get_future().share();
            toBuild = entry.promise;
            it = _stored.emplace(key, std::move(entry)).first;
            _misses.fetch_add(1, std::memory_order_relaxed);
        } else {
            _hits.fetch_add(1, std::memory_order_relaxed);
        }
        future = it->second.future;
    }

    if (toBuild) {
        try {
            StoredPtr stored = openDiskEntry(key, opts);
            if (stored) {
                _diskHits.fetch_add(1, std::memory_order_relaxed);
            } else {
                // Full miss: generate → decode → spill as ONE
                // streaming pass.  The workload is never materialised
                // in any form — this is how a trace larger than
                // memory gets built at all.
                _buildCount.fetch_add(1, std::memory_order_relaxed);
                const std::string path = diskPathFor(key);
                const std::string tmp =
                    path + ".tmp." + std::to_string(::getpid());
                trace::StoreWriteOptions store;
                {
                    std::lock_guard<std::mutex> lock(_mutex);
                    store.chunkRefs = _disk.chunkRefs;
                }
                store.configFingerprint = hashKey(key, kPrintSeed);
                bool direct;
                gen::DirectGenConfig dg;
                {
                    std::lock_guard<std::mutex> lock(_mutex);
                    direct = _directGen;
                    dg = _directCfg;
                }
                if (direct) {
                    // spillPrepared handles the timedStreams
                    // fallback internally; the file is byte-
                    // identical to spillFromSource either way.
                    gen::spillPrepared(cfg, opts, tmp, store, dg);
                } else {
                    gen::WorkloadSource source(cfg);
                    trace::spillFromSource(source, cfg.name, opts,
                                           tmp, store);
                }
                if (::rename(tmp.c_str(), path.c_str()) != 0) {
                    ::unlink(tmp.c_str());
                    throw std::runtime_error(
                        "TraceRepository: cannot rename " + tmp +
                        " into the cache");
                }
                _diskWrites.fetch_add(1, std::memory_order_relaxed);
                evictDisk(path);
                stored = trace::StoredTrace::open(path);
            }
            toBuild->set_value(std::move(stored));
        } catch (...) {
            toBuild->set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(_mutex);
            _stored.erase(key);
        }
    }
    return future.get();
}

void
TraceRepository::evictLocked()
{
    std::size_t readyBytes = 0;
    std::size_t readyCount = 0;
    for (const auto &[key, entry] : _entries) {
        if (entry.ready) {
            readyBytes += entry.bytes;
            ++readyCount;
        }
    }
    // Keep at least the most recently used entry even when a single
    // trace exceeds the budget — evicting it would just rebuild it.
    while (readyBytes > _maxBytes && readyCount > 1) {
        auto victim = _entries.end();
        for (auto it = _entries.begin(); it != _entries.end(); ++it) {
            if (!it->second.ready)
                continue;
            if (victim == _entries.end() ||
                it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        readyBytes -= victim->second.bytes;
        --readyCount;
        _entries.erase(victim);
        _evictions.fetch_add(1, std::memory_order_relaxed);
    }
}

void
TraceRepository::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _entries.clear();
    _stored.clear();
}

std::size_t
TraceRepository::size() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _entries.size();
}

TraceRepository &
TraceRepository::global()
{
    static TraceRepository repo;
    return repo;
}

} // namespace dirsim::sim
